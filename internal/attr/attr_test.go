package attr

import (
	"strings"
	"testing"
)

func TestBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for b := Bucket(0); b < NumBuckets; b++ {
		n := b.String()
		if n == "" || strings.HasPrefix(n, "bucket(") {
			t.Errorf("bucket %d has no name", int(b))
		}
		if seen[n] {
			t.Errorf("duplicate bucket name %q", n)
		}
		seen[n] = true
	}
	if got := Bucket(200).String(); got != "bucket(200)" {
		t.Errorf("out-of-range bucket name = %q", got)
	}
}

func TestNoteAndConservation(t *testing.T) {
	r := NewRun("cycles", []int{3, 2}, 2)
	// Core 0: 4 cycles — issue, issue, queue-empty (instr 1, queue 0), idle.
	r.Note(0, Issue, 0, -1)
	r.Note(0, Issue, 2, -1)
	r.Note(0, QueueEmpty, 1, 0)
	r.Note(0, Idle, -1, -1)
	// Core 1: 4 cycles — issue, queue-full (instr 0, queue 1), memory, branch.
	r.Note(1, Issue, 0, -1)
	r.Note(1, QueueFull, 0, 1)
	r.Note(1, Memory, 1, -1)
	r.Note(1, Branch, 1, -1)

	if err := r.CheckConservation([]int64{4, 4}); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if err := r.CheckConservation([]int64{4, 5}); err == nil {
		t.Fatal("conservation accepted a wrong total")
	}
	if got := r.Queues[0][QueueEmpty]; got != 1 {
		t.Errorf("queue 0 queue-empty blame = %d, want 1", got)
	}
	if got := r.Queues[1][QueueFull]; got != 1 {
		t.Errorf("queue 1 queue-full blame = %d, want 1", got)
	}
	tot := r.TotalBuckets()
	if tot.Total() != 8 {
		t.Errorf("total buckets sum to %d, want 8", tot.Total())
	}
	if tot[Issue] != 3 {
		t.Errorf("total issue = %d, want 3", tot[Issue])
	}
}

func TestConservationCatchesInstrMismatch(t *testing.T) {
	r := NewRun("cycles", []int{2}, 0)
	// Core tally says issue, but no instruction blamed: instr sums diverge.
	r.Cores[0][Issue] = 1
	if err := r.CheckConservation([]int64{1}); err == nil {
		t.Fatal("conservation accepted core tally without instruction blame")
	}
}

func TestNilRun(t *testing.T) {
	var r *Run
	r.Note(0, Issue, 0, 0) // must not panic
	if err := r.CheckConservation(nil); err == nil {
		t.Fatal("nil run must not conserve")
	}
	if got := r.TotalBuckets(); got.Total() != 0 {
		t.Errorf("nil run total = %d", got.Total())
	}
}
