// Package attr defines the cycle-attribution taxonomy shared by the
// cycle-level simulator, the multi-threaded interpreter, and the profiler
// (internal/profile). Every simulated core-cycle (and every interpreter
// scheduler pick) is tagged with exactly one cause Bucket, so the bucket
// sums obey an exact conservation invariant: per core they equal the run's
// cycle count (per thread, the thread's pick count). The profiler's
// speedup-explanation reports rest on that invariant — a delta in total
// cycles decomposes exactly into per-bucket deltas.
//
// attr is a leaf package: sim and interp both fill attr.Run values, and
// profile consumes them, without sim and interp having to know about each
// other or about the profiler.
package attr

import "fmt"

// Bucket is one cause a core-cycle (or scheduler pick) is attributed to.
type Bucket uint8

const (
	// Issue: the core issued at least one instruction this cycle (for the
	// interpreter: the picked thread issued its instruction).
	Issue Bucket = iota
	// DepStall: issue blocked on an operand still in flight from an ALU /
	// FP instruction (plain dataflow latency).
	DepStall
	// Memory: issue blocked on an operand still in flight from a load
	// (cache miss / memory latency).
	Memory
	// CommLatency: issue blocked on an operand still in flight from the
	// synchronization array (a consumed value not yet delivered), or on
	// SA request-port contention.
	CommLatency
	// QueueEmpty: blocked consuming from an empty queue — the producing
	// thread has not caught up.
	QueueEmpty
	// QueueFull: blocked producing into a full queue — the consuming
	// thread has not caught up (backpressure).
	QueueFull
	// Branch: front-end bubble after a mispredicted branch.
	Branch
	// Fault: an injected stall froze the core/thread (fault injection
	// runs only; always zero on clean runs).
	Fault
	// Idle: the core finished its thread before the end of the run (the
	// interpreter never tags Idle: finished threads are no longer picked).
	Idle

	// NumBuckets is the number of cause buckets.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"issue", "dep-stall", "memory", "comms-latency",
	"queue-empty", "queue-full", "branch", "fault", "idle",
}

// String returns the bucket's report name.
func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// Buckets is a per-bucket cycle (or pick) tally.
type Buckets [NumBuckets]int64

// Total returns the sum over all buckets.
func (b *Buckets) Total() int64 {
	var n int64
	for _, v := range b {
		n += v
	}
	return n
}

// Add accumulates o into b.
func (b *Buckets) Add(o *Buckets) {
	for i := range b {
		b[i] += o[i]
	}
}

// Run is the attribution of one simulator or interpreter run: a bucket
// tally per core (thread), per static instruction, and per queue. It is
// filled observationally — recording never changes timing — and obeys:
//
//   - Cores[c].Total() == the run's cycle count, for every core c
//     (interpreter: == the number of times thread c was picked), and
//   - sum over instructions of Instrs[c] == Cores[c] minus the Idle
//     bucket (idle cycles happen after the core's last instruction and
//     belong to no instruction).
//
// Queues tallies only communication-caused buckets (QueueEmpty, QueueFull,
// CommLatency): the cycles each queue arc stalled a core.
type Run struct {
	// Clock names the unit: "cycles" (simulator) or "picks" (interpreter).
	Clock string
	// Cores[c] is core/thread c's per-bucket tally.
	Cores []Buckets
	// Instrs[c][id] is the tally attributed to static instruction id of
	// core c's thread function (indexed by ir.Instr.ID; rows are sized by
	// the function's NumInstrIDs).
	Instrs [][]Buckets
	// Queues[q] is the tally of stall cycles blamed on queue q.
	Queues []Buckets
}

// NewRun returns a zeroed attribution for the given per-core instruction-ID
// space sizes and queue count.
func NewRun(clock string, instrIDs []int, numQueues int) *Run {
	r := &Run{
		Clock:  clock,
		Cores:  make([]Buckets, len(instrIDs)),
		Instrs: make([][]Buckets, len(instrIDs)),
		Queues: make([]Buckets, numQueues),
	}
	for i, n := range instrIDs {
		r.Instrs[i] = make([]Buckets, n)
	}
	return r
}

// Note tags one cycle (pick) of core with bucket b, optionally blaming a
// static instruction ID (instr >= 0) and a queue (queue >= 0). A nil Run
// records nothing, so instrumented code needs no nil checks.
func (r *Run) Note(core int, b Bucket, instr, queue int) {
	if r == nil {
		return
	}
	r.Cores[core][b]++
	if instr >= 0 && instr < len(r.Instrs[core]) {
		r.Instrs[core][instr][b]++
	}
	if queue >= 0 && queue < len(r.Queues) {
		r.Queues[queue][b]++
	}
}

// CheckConservation verifies the attribution invariants against the run's
// per-core totals (cycle count per core, or per-thread pick counts): every
// core's buckets must sum exactly to its total, and the per-instruction
// tallies must sum to the core tally minus Idle. It returns nil when the
// attribution conserves.
func (r *Run) CheckConservation(totals []int64) error {
	if r == nil {
		return fmt.Errorf("attr: no attribution recorded")
	}
	if len(totals) != len(r.Cores) {
		return fmt.Errorf("attr: %d cores attributed, %d totals", len(r.Cores), len(totals))
	}
	for c := range r.Cores {
		if got := r.Cores[c].Total(); got != totals[c] {
			return fmt.Errorf("attr: core %d buckets sum to %d %s, run says %d", c, got, r.Clock, totals[c])
		}
		var instrSum Buckets
		for i := range r.Instrs[c] {
			instrSum.Add(&r.Instrs[c][i])
		}
		want := r.Cores[c]
		want[Idle] = 0
		for b := Bucket(0); b < NumBuckets; b++ {
			if instrSum[b] != want[b] {
				return fmt.Errorf("attr: core %d bucket %s: instruction blame sums to %d, core tally is %d",
					c, b, instrSum[b], want[b])
			}
		}
	}
	return nil
}

// TotalBuckets returns the sum of Cores over all cores — the quantity the
// speedup-explanation decomposes (it sums to numCores × cycles).
func (r *Run) TotalBuckets() Buckets {
	var t Buckets
	if r == nil {
		return t
	}
	for c := range r.Cores {
		t.Add(&r.Cores[c])
	}
	return t
}
