package benchsuite

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteJSONStableAndSorted(t *testing.T) {
	rs := []Result{
		{Name: "B", Iterations: 2, NsPerOp: 1.5, AllocsPerOp: 12, BytesPerOp: 4096,
			Metrics: map[string]float64{"z": 3, "a": 740129}},
		{Name: "A", Iterations: 1, NsPerOp: 100, Metrics: nil},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	want := `{
"benchmarks": [
{"name": "A", "iterations": 1, "ns_per_op": 100, "allocs_per_op": 0, "bytes_per_op": 0, "metrics": {}},
{"name": "B", "iterations": 2, "ns_per_op": 1.5, "allocs_per_op": 12, "bytes_per_op": 4096, "metrics": {"a": 740129, "z": 3}}
]
}
`
	if buf.String() != want {
		t.Errorf("WriteJSON:\n%s\nwant:\n%s", buf.String(), want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("output is not valid JSON")
	}
}

func TestReadFileRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := NewRecorder(path)
	want := Result{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 7, BytesPerOp: 512,
		Metrics: map[string]float64{"cycles": 684750}}
	if err := r.Record(want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "X" || got[0].Iterations != 3 ||
		got[0].NsPerOp != 1.5 || got[0].AllocsPerOp != 7 || got[0].BytesPerOp != 512 ||
		got[0].Metrics["cycles"] != 684750 {
		t.Errorf("ReadFile = %+v, want [%+v]", got, want)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Errorf("ReadFile on a missing file: %v, want not-exist", err)
	}
}

func TestDiffIgnoresTimingAndCatchesDrift(t *testing.T) {
	baseline := []Result{
		{Name: "Sim", Iterations: 1, NsPerOp: 100, Metrics: map[string]float64{"cycles": 1000, "instrs": 50}},
		{Name: "Gone", Metrics: map[string]float64{"x": 1}},
	}
	fresh := []Result{
		// Different timing and iterations, one drifted value, one metric
		// missing, one metric added.
		{Name: "Sim", Iterations: 9, NsPerOp: 999, Metrics: map[string]float64{"cycles": 1001, "steps": 7}},
		// Not in the baseline: must be ignored.
		{Name: "New", Metrics: map[string]float64{"y": 2}},
	}
	got := Diff(baseline, fresh)
	want := []string{
		`Gone: missing from fresh run`,
		`Sim: metric "cycles" drifted: baseline 1000, fresh 1001`,
		`Sim: metric "instrs" = 50 missing from fresh run`,
		`Sim: new metric "steps" = 7 not in baseline`,
	}
	if len(got) != len(want) {
		t.Fatalf("Diff = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Diff[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// Identical metrics under different timing: no drift.
	if d := Diff(baseline[:1], []Result{{Name: "Sim", NsPerOp: 1,
		Metrics: map[string]float64{"cycles": 1000, "instrs": 50}}}); len(d) != 0 {
		t.Errorf("timing-only change reported as drift: %q", d)
	}
}

// TestDiffFlagsAllocationRegressions pins the allocation gate: growth past
// 25% plus the absolute floor is a regression; growth within the band,
// improvements, and unrecorded (zero) counters are not.
func TestDiffFlagsAllocationRegressions(t *testing.T) {
	base := func(allocs, bytes float64) []Result {
		return []Result{{Name: "B", AllocsPerOp: allocs, BytesPerOp: bytes,
			Metrics: map[string]float64{"cycles": 1}}}
	}
	fresh := func(allocs, bytes float64) []Result {
		return []Result{{Name: "B", AllocsPerOp: allocs, BytesPerOp: bytes,
			Metrics: map[string]float64{"cycles": 1}}}
	}
	cases := []struct {
		name            string
		bAllocs, bBytes float64
		fAllocs, fBytes float64
		wantDrift       int
	}{
		{"within band", 100, 10000, 110, 11000, 0},
		{"improvement", 100, 10000, 10, 1000, 0},
		{"alloc regression", 100, 10000, 200, 10000, 1},
		{"bytes regression", 100, 10000, 100, 20000, 1},
		{"both regress", 100, 10000, 200, 20000, 2},
		{"tiny baseline inside floor", 2, 100, 9, 1100, 0},
		{"tiny baseline past floor", 2, 100, 11, 2000, 2},
		{"baseline unrecorded", 0, 0, 500, 500000, 0},
		{"fresh unrecorded", 100, 10000, 0, 0, 0},
	}
	for _, tc := range cases {
		d := Diff(base(tc.bAllocs, tc.bBytes), fresh(tc.fAllocs, tc.fBytes))
		if len(d) != tc.wantDrift {
			t.Errorf("%s: Diff = %q, want %d drift line(s)", tc.name, d, tc.wantDrift)
		}
	}
}

func TestRecorderRewritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := NewRecorder(path)
	if err := r.Record(Result{Name: "X", Iterations: 1, NsPerOp: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(Result{Name: "X", Iterations: 5, NsPerOp: 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Iterations != 5 {
		t.Errorf("file = %s, want one X entry with 5 iterations", raw)
	}
}
