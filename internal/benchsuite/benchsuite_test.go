package benchsuite

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteJSONStableAndSorted(t *testing.T) {
	rs := []Result{
		{Name: "B", Iterations: 2, NsPerOp: 1.5, Metrics: map[string]float64{"z": 3, "a": 740129}},
		{Name: "A", Iterations: 1, NsPerOp: 100, Metrics: nil},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	want := `{
"benchmarks": [
{"name": "A", "iterations": 1, "ns_per_op": 100, "metrics": {}},
{"name": "B", "iterations": 2, "ns_per_op": 1.5, "metrics": {"a": 740129, "z": 3}}
]
}
`
	if buf.String() != want {
		t.Errorf("WriteJSON:\n%s\nwant:\n%s", buf.String(), want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("output is not valid JSON")
	}
}

func TestRecorderRewritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := NewRecorder(path)
	if err := r.Record(Result{Name: "X", Iterations: 1, NsPerOp: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(Result{Name: "X", Iterations: 5, NsPerOp: 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Iterations != 5 {
		t.Errorf("file = %s, want one X entry with 5 iterations", raw)
	}
}
