package benchsuite

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteJSONStableAndSorted(t *testing.T) {
	rs := []Result{
		{Name: "B", Iterations: 2, NsPerOp: 1.5, Metrics: map[string]float64{"z": 3, "a": 740129}},
		{Name: "A", Iterations: 1, NsPerOp: 100, Metrics: nil},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	want := `{
"benchmarks": [
{"name": "A", "iterations": 1, "ns_per_op": 100, "metrics": {}},
{"name": "B", "iterations": 2, "ns_per_op": 1.5, "metrics": {"a": 740129, "z": 3}}
]
}
`
	if buf.String() != want {
		t.Errorf("WriteJSON:\n%s\nwant:\n%s", buf.String(), want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("output is not valid JSON")
	}
}

func TestReadFileRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := NewRecorder(path)
	want := Result{Name: "X", Iterations: 3, NsPerOp: 1.5,
		Metrics: map[string]float64{"cycles": 684750}}
	if err := r.Record(want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "X" || got[0].Iterations != 3 ||
		got[0].NsPerOp != 1.5 || got[0].Metrics["cycles"] != 684750 {
		t.Errorf("ReadFile = %+v, want [%+v]", got, want)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Errorf("ReadFile on a missing file: %v, want not-exist", err)
	}
}

func TestDiffIgnoresTimingAndCatchesDrift(t *testing.T) {
	baseline := []Result{
		{Name: "Sim", Iterations: 1, NsPerOp: 100, Metrics: map[string]float64{"cycles": 1000, "instrs": 50}},
		{Name: "Gone", Metrics: map[string]float64{"x": 1}},
	}
	fresh := []Result{
		// Different timing and iterations, one drifted value, one metric
		// missing, one metric added.
		{Name: "Sim", Iterations: 9, NsPerOp: 999, Metrics: map[string]float64{"cycles": 1001, "steps": 7}},
		// Not in the baseline: must be ignored.
		{Name: "New", Metrics: map[string]float64{"y": 2}},
	}
	got := Diff(baseline, fresh)
	want := []string{
		`Gone: missing from fresh run`,
		`Sim: metric "cycles" drifted: baseline 1000, fresh 1001`,
		`Sim: metric "instrs" = 50 missing from fresh run`,
		`Sim: new metric "steps" = 7 not in baseline`,
	}
	if len(got) != len(want) {
		t.Fatalf("Diff = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Diff[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// Identical metrics under different timing: no drift.
	if d := Diff(baseline[:1], []Result{{Name: "Sim", NsPerOp: 1,
		Metrics: map[string]float64{"cycles": 1000, "instrs": 50}}}); len(d) != 0 {
		t.Errorf("timing-only change reported as drift: %q", d)
	}
}

func TestRecorderRewritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := NewRecorder(path)
	if err := r.Record(Result{Name: "X", Iterations: 1, NsPerOp: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(Result{Name: "X", Iterations: 5, NsPerOp: 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Iterations != 5 {
		t.Errorf("file = %s, want one X entry with 5 iterations", raw)
	}
}
