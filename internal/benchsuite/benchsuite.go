// Package benchsuite serializes benchmark results to a JSON artifact
// (BENCH_pipeline.json) so CI can archive per-commit performance data and
// a perf PR can diff before/after numbers. Wall-clock ns/op is inherently
// noisy; each result therefore also carries the benchmark's deterministic
// work metrics (steps, cycles, queue counts), which must not drift at all
// between commits unless the change intends them to.
package benchsuite

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Result is one benchmark's outcome.
type Result struct {
	// Name is the benchmark name as reported by the testing package.
	Name string
	// Iterations is b.N of the final run.
	Iterations int
	// NsPerOp is wall-clock nanoseconds per iteration (noisy; compare
	// with judgement).
	NsPerOp float64
	// AllocsPerOp is heap allocations per iteration. Unlike ns/op it is
	// nearly deterministic (runtime-internal allocations add small noise),
	// so Diff gates on it with a slack band rather than exact equality.
	// Zero means "not recorded" in artifacts predating the field.
	AllocsPerOp float64
	// BytesPerOp is heap bytes allocated per iteration; same contract as
	// AllocsPerOp.
	BytesPerOp float64
	// Metrics holds the benchmark's deterministic quantities.
	Metrics map[string]float64
}

// Recorder accumulates results and rewrites its file after every Record:
// the go test harness offers no end-of-run hook short of TestMain, and a
// partial file beats a missing one when a later benchmark crashes.
type Recorder struct {
	mu      sync.Mutex
	path    string
	results map[string]Result
}

// NewRecorder returns a recorder that maintains the JSON file at path.
func NewRecorder(path string) *Recorder {
	return &Recorder{path: path, results: map[string]Result{}}
}

// Record stores res (replacing any previous result with the same name)
// and rewrites the file.
func (r *Recorder) Record(res Result) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[res.Name] = res
	rs := make([]Result, 0, len(r.results))
	for _, v := range r.results {
		rs = append(rs, v)
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	err = WriteJSON(f, rs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteJSON renders results sorted by name with stable field ordering:
// one benchmark per line, fields in the order name, iterations, ns_per_op,
// allocs_per_op, bytes_per_op, metrics (keys sorted). Everything but
// ns_per_op (and small runtime noise in the allocation counters) is
// deterministic.
func WriteJSON(w io.Writer, results []Result) error {
	rs := append([]Result(nil), results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
	if _, err := io.WriteString(w, "{\n\"benchmarks\": ["); err != nil {
		return err
	}
	for i, r := range rs {
		sep := ","
		if i == 0 {
			sep = ""
		}
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		metrics := ""
		for j, k := range keys {
			if j > 0 {
				metrics += ", "
			}
			metrics += fmt.Sprintf("%q: %s", k, formatFloat(r.Metrics[k]))
		}
		if _, err := fmt.Fprintf(w, "%s\n{\"name\": %q, \"iterations\": %d, \"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"metrics\": {%s}}",
			sep, r.Name, r.Iterations, formatFloat(r.NsPerOp),
			formatFloat(r.AllocsPerOp), formatFloat(r.BytesPerOp), metrics); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}\n")
	return err
}

// formatFloat renders v as a JSON number (shortest round-trip form;
// integers print without an exponent or trailing zeros).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// ReadFile parses a benchmark artifact previously written by WriteJSON.
func ReadFile(path string) ([]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks []struct {
			Name        string             `json:"name"`
			Iterations  int                `json:"iterations"`
			NsPerOp     float64            `json:"ns_per_op"`
			AllocsPerOp float64            `json:"allocs_per_op"`
			BytesPerOp  float64            `json:"bytes_per_op"`
			Metrics     map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("benchsuite: parsing %s: %w", path, err)
	}
	rs := make([]Result, 0, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		rs = append(rs, Result{
			Name: b.Name, Iterations: b.Iterations, NsPerOp: b.NsPerOp,
			AllocsPerOp: b.AllocsPerOp, BytesPerOp: b.BytesPerOp, Metrics: b.Metrics,
		})
	}
	return rs, nil
}

// Allocation-regression slack: allocation counts are near-deterministic
// but the runtime contributes a few of its own (GC metadata, map growth
// timing), so the gate flags only growth beyond a relative band plus an
// absolute floor that absorbs that jitter on tiny baselines.
const (
	allocSlackRatio = 1.25
	allocSlackFloor = 8
	bytesSlackFloor = 1024
)

// Diff compares a fresh run's deterministic work metrics against a
// baseline, returning one human-readable line per drift (empty = no
// drift). Metrics must match exactly: ns_per_op is wall-clock noise and
// iteration counts depend on -benchtime, so both are ignored. Allocation
// counters regress when fresh exceeds baseline by more than 25% plus an
// absolute floor; a zero on either side means "not recorded" (plain-test
// gates and pre-field artifacts) and skips the check. A baseline
// benchmark absent from the fresh set, a metric key that appears or
// disappears, and any changed value all count as drift; fresh benchmarks
// not in the baseline are ignored (they join it when it is regenerated).
func Diff(baseline, fresh []Result) []string {
	fm := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		fm[r.Name] = r
	}
	base := append([]Result(nil), baseline...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	var drift []string
	for _, b := range base {
		f, ok := fm[b.Name]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: missing from fresh run", b.Name))
			continue
		}
		if d := allocRegression(b.Name, "allocs_per_op", b.AllocsPerOp, f.AllocsPerOp, allocSlackFloor); d != "" {
			drift = append(drift, d)
		}
		if d := allocRegression(b.Name, "bytes_per_op", b.BytesPerOp, f.BytesPerOp, bytesSlackFloor); d != "" {
			drift = append(drift, d)
		}
		keys := map[string]bool{}
		for k := range b.Metrics {
			keys[k] = true
		}
		for k := range f.Metrics {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			bv, bok := b.Metrics[k]
			fv, fok := f.Metrics[k]
			switch {
			case !bok:
				drift = append(drift, fmt.Sprintf("%s: new metric %q = %s not in baseline", b.Name, k, formatFloat(fv)))
			case !fok:
				drift = append(drift, fmt.Sprintf("%s: metric %q = %s missing from fresh run", b.Name, k, formatFloat(bv)))
			case bv != fv:
				drift = append(drift, fmt.Sprintf("%s: metric %q drifted: baseline %s, fresh %s",
					b.Name, k, formatFloat(bv), formatFloat(fv)))
			}
		}
	}
	return drift
}

// allocRegression returns a drift line when fresh exceeds the slack band
// over baseline, or "" when it is within the band or either side is
// unrecorded (zero).
func allocRegression(name, field string, baseline, fresh, floor float64) string {
	if baseline == 0 || fresh == 0 {
		return ""
	}
	limit := baseline * allocSlackRatio
	if withFloor := baseline + floor; withFloor > limit {
		limit = withFloor
	}
	if fresh <= limit {
		return ""
	}
	return fmt.Sprintf("%s: %s regressed: baseline %s, fresh %s (limit %s)",
		name, field, formatFloat(baseline), formatFloat(fresh), formatFloat(limit))
}
