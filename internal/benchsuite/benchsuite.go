// Package benchsuite serializes benchmark results to a JSON artifact
// (BENCH_pipeline.json) so CI can archive per-commit performance data and
// a perf PR can diff before/after numbers. Wall-clock ns/op is inherently
// noisy; each result therefore also carries the benchmark's deterministic
// work metrics (steps, cycles, queue counts), which must not drift at all
// between commits unless the change intends them to.
package benchsuite

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Result is one benchmark's outcome.
type Result struct {
	// Name is the benchmark name as reported by the testing package.
	Name string
	// Iterations is b.N of the final run.
	Iterations int
	// NsPerOp is wall-clock nanoseconds per iteration (noisy; compare
	// with judgement).
	NsPerOp float64
	// Metrics holds the benchmark's deterministic quantities.
	Metrics map[string]float64
}

// Recorder accumulates results and rewrites its file after every Record:
// the go test harness offers no end-of-run hook short of TestMain, and a
// partial file beats a missing one when a later benchmark crashes.
type Recorder struct {
	mu      sync.Mutex
	path    string
	results map[string]Result
}

// NewRecorder returns a recorder that maintains the JSON file at path.
func NewRecorder(path string) *Recorder {
	return &Recorder{path: path, results: map[string]Result{}}
}

// Record stores res (replacing any previous result with the same name)
// and rewrites the file.
func (r *Recorder) Record(res Result) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[res.Name] = res
	rs := make([]Result, 0, len(r.results))
	for _, v := range r.results {
		rs = append(rs, v)
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	err = WriteJSON(f, rs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteJSON renders results sorted by name with stable field ordering:
// one benchmark per line, fields in the order name, iterations, ns_per_op,
// metrics (keys sorted). Everything but ns_per_op is deterministic.
func WriteJSON(w io.Writer, results []Result) error {
	rs := append([]Result(nil), results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
	if _, err := io.WriteString(w, "{\n\"benchmarks\": ["); err != nil {
		return err
	}
	for i, r := range rs {
		sep := ","
		if i == 0 {
			sep = ""
		}
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		metrics := ""
		for j, k := range keys {
			if j > 0 {
				metrics += ", "
			}
			metrics += fmt.Sprintf("%q: %s", k, formatFloat(r.Metrics[k]))
		}
		if _, err := fmt.Fprintf(w, "%s\n{\"name\": %q, \"iterations\": %d, \"ns_per_op\": %s, \"metrics\": {%s}}",
			sep, r.Name, r.Iterations, formatFloat(r.NsPerOp), metrics); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}\n")
	return err
}

// formatFloat renders v as a JSON number (shortest round-trip form;
// integers print without an exponent or trailing zeros).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
