package budget_test

import (
	"testing"

	"repro/internal/budget"
)

func TestOrElseFillsZeroFields(t *testing.T) {
	def := budget.Default()
	if got := (budget.Budget{}).OrElse(def); got != def {
		t.Errorf("zero budget OrElse = %+v, want %+v", got, def)
	}
	partial := budget.Budget{ProfileSteps: 7}
	got := partial.OrElse(def)
	if got.ProfileSteps != 7 {
		t.Errorf("explicit field overwritten: %+v", got)
	}
	if got.MeasureSteps != def.MeasureSteps || got.SimCycles != def.SimCycles {
		t.Errorf("zero fields not defaulted: %+v", got)
	}
}

func TestPresetsArePositive(t *testing.T) {
	for name, b := range map[string]budget.Budget{
		"Default":     budget.Default(),
		"Experiments": budget.Experiments(),
	} {
		if b.ProfileSteps <= 0 || b.MeasureSteps <= 0 || b.SimCycles <= 0 {
			t.Errorf("%s has non-positive field: %+v", name, b)
		}
	}
	// The experiment harness runs under tighter limits than the public
	// API: a regression here silently changes the figures' methodology.
	if e, d := budget.Experiments(), budget.Default(); e.ProfileSteps > d.ProfileSteps || e.SimCycles > d.SimCycles {
		t.Errorf("Experiments() exceeds Default(): %+v vs %+v", e, d)
	}
}
