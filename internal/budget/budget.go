// Package budget centralizes the execution budgets that bound every
// interpreter and simulator run in the framework. Historically the public
// API (gmt), the experiment harness (internal/exp), and the command-line
// tools each hard-coded their own step and cycle limits; keeping them in
// one struct means the engine and the public API cannot drift apart.
package budget

// Budget bounds the three kinds of dynamic execution the framework
// performs. A zero field means "use the corresponding default" — callers
// normalize with OrElse before use, so partially-filled budgets compose.
type Budget struct {
	// ProfileSteps bounds single-threaded interpreter runs: train-input
	// profiling and golden-reference executions.
	ProfileSteps int64
	// MeasureSteps bounds multi-threaded interpreter runs (the
	// communication measurements behind Figures 1 and 7).
	MeasureSteps int64
	// SimCycles bounds cycle-level simulator runs (Figure 8).
	SimCycles int64
}

// Default returns the public API's budgets: generous limits sized for
// arbitrary client regions (gmt.Parallelize, gmt.Execute, gmt.Simulate).
func Default() Budget {
	return Budget{
		ProfileSteps: 500_000_000,
		MeasureSteps: 500_000_000,
		SimCycles:    2_000_000_000,
	}
}

// Experiments returns the experiment harness's budgets: the limits the
// paper-reproduction figures are measured under, tight enough that a
// runaway workload fails fast.
func Experiments() Budget {
	return Budget{
		ProfileSteps: 200_000_000,
		MeasureSteps: 200_000_000,
		SimCycles:    500_000_000,
	}
}

// OrElse returns b with every zero field replaced by the corresponding
// field of def.
func (b Budget) OrElse(def Budget) Budget {
	if b.ProfileSteps == 0 {
		b.ProfileSteps = def.ProfileSteps
	}
	if b.MeasureSteps == 0 {
		b.MeasureSteps = def.MeasureSteps
	}
	if b.SimCycles == 0 {
		b.SimCycles = def.SimCycles
	}
	return b
}
