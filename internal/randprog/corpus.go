package randprog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// Axes is one point in the corpus parameter space: the seeded,
// reproducible coordinates a program is generated at. Axes (not Options)
// is what the corpus manifest records — it is the compact, versionable
// description of *why* a program looks the way it does.
type Axes struct {
	// Size is the target static instruction count (the size axis).
	Size int `json:"size"`
	// Shape is the CFG shape profile.
	Shape Shape `json:"shape"`
	// AliasDensity is the approximate percentage of memory statements.
	AliasDensity int `json:"alias_density"`
	// LiveOuts is the exact live-out register count.
	LiveOuts int `json:"live_outs"`
	// QueuePressure is the dependence-chain skew percentage.
	QueuePressure int `json:"queue_pressure"`
}

// String renders the axes compactly for reports and cell labels.
func (a Axes) String() string {
	return fmt.Sprintf("size=%d shape=%s alias=%d outs=%d qp=%d",
		a.Size, a.Shape, a.AliasDensity, a.LiveOuts, a.QueuePressure)
}

// Options maps the axes onto generator options. Structural bounds scale
// with the size axis; array count falls as aliasing density rises, so a
// high-density program funnels all its memory traffic through one or two
// arrays (maximal collisions) while a low-density one spreads it thin.
func (a Axes) Options() Options {
	depth := 2
	switch {
	case a.Shape == ShapeStraight:
		depth = 0
	case a.Size >= 640:
		depth = 4
	case a.Size >= 160:
		depth = 3
	}
	stmts := clamp(4+a.Size/64, 4, 16)
	arrays := clamp(4-a.AliasDensity/25, 1, MaxArraysLimit)
	return Options{
		MaxDepth:      depth,
		MaxStmts:      stmts,
		Arrays:        arrays,
		TargetInstrs:  a.Size,
		Shape:         a.Shape,
		AliasDensity:  a.AliasDensity,
		LiveOuts:      a.LiveOuts,
		QueuePressure: a.QueuePressure,
	}
}

// Axis value pools, spanning the ranges the stress sweep covers. Size
// values run from tiny (10 instructions) to the generation ceiling.
var (
	sizePool     = []int{10, 40, 160, 640, 2560, 5000}
	shapePool    = Shapes()
	aliasPool    = []int{5, 20, 45, 70}
	liveOutPool  = []int{1, 2, 3, 6, 10}
	pressurePool = []int{10, 35, 60, 85}
)

// AxesForSeed draws one reproducible point from the axis pools: a pure
// function of the seed, independent of math/rand internals, so manifests
// stay stable across Go releases. maxSize (0 = unlimited) caps the size
// axis — short/CI modes use it to keep programs small.
func AxesForSeed(seed int64, maxSize int) Axes {
	sizes := sizePool
	if maxSize > 0 {
		sizes = sizes[:0:0]
		for _, s := range sizePool {
			if s <= maxSize {
				sizes = append(sizes, s)
			}
		}
		if len(sizes) == 0 {
			sizes = []int{maxSize}
		}
	}
	h := mix(uint64(seed) ^ 0x636f7270757361) // "corpusa"
	a := Axes{Size: sizes[h%uint64(len(sizes))]}
	h = mix(h)
	a.Shape = shapePool[h%uint64(len(shapePool))]
	h = mix(h)
	a.AliasDensity = aliasPool[h%uint64(len(aliasPool))]
	h = mix(h)
	a.LiveOuts = liveOutPool[h%uint64(len(liveOutPool))]
	h = mix(h)
	a.QueuePressure = pressurePool[h%uint64(len(pressurePool))]
	return a
}

// mix advances the SplitMix64 generator — tiny, seedable, and
// deterministic across platforms and Go versions.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fingerprint is a stable content hash of everything that determines the
// program's behavior: the IR text, the arguments, the initial memory, and
// the object table. Two runs that generate the same fingerprint for a seed
// generated the same test case, byte for byte.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, p.F.String())
	fmt.Fprintf(h, "\nargs %v\nmem %v\n", p.Args, p.Mem)
	for _, o := range p.Objects {
		fmt.Fprintf(h, "object %s %d %d\n", o.Name, o.Base, o.Size)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ManifestVersion is bumped whenever generation changes in a way that
// alters the program a (seed, axes) pair produces; a manifest with a
// different version cannot be reproduced by this binary.
const ManifestVersion = 1

// Entry describes one corpus program: the seed and axes that regenerate
// it, and the fingerprint that proves the regeneration matched.
type Entry struct {
	Seed        int64  `json:"seed"`
	Axes        Axes   `json:"axes"`
	Fingerprint string `json:"fingerprint"`
	Instrs      int    `json:"instrs"`
	Blocks      int    `json:"blocks"`
}

// Manifest is the corpus.json format: the reproducible description of a
// generated corpus. Materializing the manifest and regenerating from it
// yield identical programs or a loud fingerprint mismatch.
type Manifest struct {
	Version int `json:"version"`
	// Seed is the corpus base seed; program i uses Seed + i.
	Seed int64 `json:"seed"`
	// MaxSize is the size-axis cap the corpus was drawn under (0 = none).
	MaxSize  int     `json:"max_size,omitempty"`
	Programs []Entry `json:"programs"`
}

// GenerateEntry deterministically builds corpus program for one seed under
// a size cap, returning its manifest entry alongside the program.
func GenerateEntry(seed int64, maxSize int) (Entry, *Program) {
	axes := AxesForSeed(seed, maxSize)
	p := Generate(rand.New(rand.NewSource(seed)), axes.Options())
	return Entry{
		Seed:        seed,
		Axes:        axes,
		Fingerprint: p.Fingerprint(),
		Instrs:      p.F.NumInstrs(),
		Blocks:      len(p.F.Blocks),
	}, p
}

// BuildManifest generates the n-program corpus rooted at seed and returns
// its manifest (programs themselves are regenerated on demand from the
// entries — the corpus streams, it is never held in memory at once).
func BuildManifest(seed int64, n, maxSize int) *Manifest {
	m := &Manifest{Version: ManifestVersion, Seed: seed, MaxSize: maxSize}
	for i := 0; i < n; i++ {
		e, _ := GenerateEntry(seed+int64(i), maxSize)
		m.Programs = append(m.Programs, e)
	}
	return m
}

// WriteJSON renders the manifest with stable key order and indentation:
// the same corpus always produces byte-identical corpus.json.
func (m *Manifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ParseManifest parses a corpus.json. A version this binary cannot
// reproduce is a hard error, not a silent regeneration mismatch.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("randprog: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("randprog: manifest version %d, this binary generates version %d", m.Version, ManifestVersion)
	}
	return &m, nil
}

// Regenerate rebuilds the program for a manifest entry and verifies its
// fingerprint, guaranteeing the caller runs exactly the corpus the
// manifest describes.
func (m *Manifest) Regenerate(i int) (*Program, error) {
	if i < 0 || i >= len(m.Programs) {
		return nil, fmt.Errorf("randprog: manifest has no program %d", i)
	}
	e := m.Programs[i]
	axes := e.Axes
	p := Generate(rand.New(rand.NewSource(e.Seed)), axes.Options())
	if fp := p.Fingerprint(); fp != e.Fingerprint {
		return nil, fmt.Errorf("randprog: program %d (seed %d): fingerprint %s, manifest says %s — generator drifted from the manifest",
			i, e.Seed, fp, e.Fingerprint)
	}
	return p, nil
}
