package randprog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// TestOptionsValidate is the table-driven option-sanity check: every
// field's range is enforced, and the zero/negative values that used to
// panic or degenerate are rejected loudly.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"default", DefaultOptions(), true},
		{"zero MaxStmts", Options{MaxDepth: 3, MaxStmts: 0, Arrays: 2}, false},
		{"negative MaxStmts", Options{MaxDepth: 3, MaxStmts: -1, Arrays: 2}, false},
		{"huge MaxStmts", Options{MaxDepth: 3, MaxStmts: MaxStmtsLimit + 1, Arrays: 2}, false},
		{"negative MaxDepth", Options{MaxDepth: -1, MaxStmts: 5, Arrays: 2}, false},
		{"huge MaxDepth", Options{MaxDepth: MaxDepthLimit + 1, MaxStmts: 5, Arrays: 2}, false},
		{"zero depth ok", Options{MaxDepth: 0, MaxStmts: 5, Arrays: 2}, true},
		{"negative Arrays", Options{MaxDepth: 3, MaxStmts: 5, Arrays: -2}, false},
		{"huge Arrays", Options{MaxDepth: 3, MaxStmts: 5, Arrays: MaxArraysLimit + 1}, false},
		{"zero Arrays ok", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 0}, true},
		{"negative target", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, TargetInstrs: -5}, false},
		{"huge target", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, TargetInstrs: MaxTargetInstrs + 1}, false},
		{"target ok", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, TargetInstrs: 500}, true},
		{"alias over 100", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, AliasDensity: 101}, false},
		{"alias negative", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, AliasDensity: -1}, false},
		{"pressure over 100", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, QueuePressure: 200}, false},
		{"liveouts negative", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, LiveOuts: -1}, false},
		{"liveouts huge", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, LiveOuts: MaxLiveOutsLimit + 1}, false},
		{"bad shape", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, Shape: "spaghetti"}, false},
		{"empty shape ok", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, Shape: ""}, true},
		{"every shape ok", Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2, Shape: ShapeLoops}, true},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

// TestGenerateClampsDegenerateOptions pins the satellite fix: options that
// used to panic (rand.Intn(0)) or produce degenerate programs now generate
// valid, terminating programs.
func TestGenerateClampsDegenerateOptions(t *testing.T) {
	degenerate := []Options{
		{},                             // all zero: MaxStmts 0 used to panic
		{MaxStmts: -3, MaxDepth: -1},   // negative bounds
		{MaxDepth: 100, MaxStmts: 100}, // far over the limits
		{Arrays: -4, MaxStmts: 1},
		{TargetInstrs: -7, MaxStmts: 2},
		{AliasDensity: 999, MaxStmts: 4, Arrays: 1},
		{Shape: "nonsense", MaxStmts: 3},
		{LiveOuts: 99, MaxStmts: 3},
	}
	for i, opts := range degenerate {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		p := Generate(rng, opts) // must not panic
		if err := p.F.Verify(); err != nil {
			t.Fatalf("opts %d (%+v): generated program invalid: %v", i, opts, err)
		}
		if _, err := interp.Run(p.F, p.Args, append([]int64(nil), p.Mem...), 2_000_000); err != nil {
			t.Fatalf("opts %d (%+v): generated program does not terminate: %v", i, opts, err)
		}
	}
}

// TestGenerateDeterministic: same seed + options = identical program text,
// inputs, and fingerprint.
func TestGenerateDeterministic(t *testing.T) {
	for _, axes := range []Axes{
		{Size: 60, Shape: ShapeMixed, AliasDensity: 20, LiveOuts: 3, QueuePressure: 35},
		{Size: 200, Shape: ShapeLoops, AliasDensity: 70, LiveOuts: 6, QueuePressure: 85},
	} {
		a := Generate(rand.New(rand.NewSource(42)), axes.Options())
		b := Generate(rand.New(rand.NewSource(42)), axes.Options())
		if a.F.String() != b.F.String() {
			t.Fatalf("%s: program text differs across identical generations", axes)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: fingerprint differs across identical generations", axes)
		}
	}
}

// hasBackEdge reports whether the CFG has a back edge (a successor that
// can reach its predecessor), i.e. a loop.
func hasBackEdge(f *ir.Function) bool {
	index := map[*ir.Block]int{}
	for i, b := range f.Blocks {
		index[b] = i
	}
	// DFS-based: an edge to a block currently on the stack is a back edge.
	state := make([]int, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var walk func(b *ir.Block) bool
	walk = func(b *ir.Block) bool {
		state[index[b]] = 1
		for _, s := range b.Succs {
			switch state[index[s]] {
			case 1:
				return true
			case 0:
				if walk(s) {
					return true
				}
			}
		}
		state[index[b]] = 2
		return false
	}
	return walk(f.Entry())
}

// TestShapeAxis checks each shape profile produces its promised CFG class.
func TestShapeAxis(t *testing.T) {
	gen := func(shape Shape, seed int64) *Program {
		axes := Axes{Size: 120, Shape: shape, AliasDensity: 20, LiveOuts: 2, QueuePressure: 25}
		return Generate(rand.New(rand.NewSource(seed)), axes.Options())
	}
	// Straight: exactly one block, no branches.
	for seed := int64(1); seed <= 5; seed++ {
		p := gen(ShapeStraight, seed)
		if len(p.F.Blocks) != 1 {
			t.Fatalf("straight seed %d: %d blocks, want 1", seed, len(p.F.Blocks))
		}
	}
	// Hammocks: branchy but never a back edge.
	branchy := false
	for seed := int64(1); seed <= 5; seed++ {
		p := gen(ShapeHammocks, seed)
		if hasBackEdge(p.F) {
			t.Fatalf("hammocks seed %d: found a loop", seed)
		}
		if len(p.F.Blocks) > 1 {
			branchy = true
		}
	}
	if !branchy {
		t.Fatal("hammocks: no seed produced any control flow")
	}
	// Loops: at least one seed yields a back edge.
	loopy := false
	for seed := int64(1); seed <= 8 && !loopy; seed++ {
		loopy = hasBackEdge(gen(ShapeLoops, seed).F)
	}
	if !loopy {
		t.Fatal("loops: no seed produced a back edge")
	}
}

// TestSizeAxis checks TargetInstrs actually scales program size.
func TestSizeAxis(t *testing.T) {
	for _, target := range []int{10, 160, 1500} {
		axes := Axes{Size: target, Shape: ShapeMixed, AliasDensity: 20, LiveOuts: 2, QueuePressure: 25}
		p := Generate(rand.New(rand.NewSource(7)), axes.Options())
		n := p.F.NumInstrs()
		if n < target {
			t.Errorf("target %d: generated only %d instrs", target, n)
		}
		// The generator overshoots by at most one statement pass; a pass is
		// bounded by MaxStmts nested constructs, so 4x is a generous bound
		// that still catches runaway growth.
		if n > 4*target+200 {
			t.Errorf("target %d: generated %d instrs (runaway)", target, n)
		}
	}
}

// TestLiveOutAxis checks the exact-live-out axis: the ret names the
// requested number of distinct registers.
func TestLiveOutAxis(t *testing.T) {
	for _, want := range []int{1, 3, 6, 10} {
		opts := Options{MaxDepth: 2, MaxStmts: 6, Arrays: 2, TargetInstrs: 80, LiveOuts: want}
		p := Generate(rand.New(rand.NewSource(11)), opts)
		ret := p.F.RetInstr()
		if ret == nil {
			t.Fatal("no ret")
		}
		if len(ret.Srcs) != want {
			t.Fatalf("LiveOuts=%d: ret names %d registers", want, len(ret.Srcs))
		}
		seen := map[ir.Reg]bool{}
		for _, r := range ret.Srcs {
			if seen[r] {
				t.Fatalf("LiveOuts=%d: duplicate live-out %v", want, r)
			}
			seen[r] = true
		}
	}
}

// TestAliasDensityAxis checks the density knob is monotone: denser
// programs carry more memory operations.
func TestAliasDensityAxis(t *testing.T) {
	memOps := func(density int) int {
		axes := Axes{Size: 400, Shape: ShapeMixed, AliasDensity: density, LiveOuts: 2, QueuePressure: 25}
		p := Generate(rand.New(rand.NewSource(3)), axes.Options())
		n := 0
		p.F.Instrs(func(in *ir.Instr) {
			if in.Op == ir.Load || in.Op == ir.Store {
				n++
			}
		})
		return n
	}
	lo, hi := memOps(5), memOps(70)
	if hi <= lo {
		t.Fatalf("alias density not monotone: %d mem ops at 5%%, %d at 70%%", lo, hi)
	}
}

// TestManifestRoundTrip: a manifest regenerates its exact corpus, its JSON
// is byte-deterministic, and version/fingerprint drift is a hard error.
func TestManifestRoundTrip(t *testing.T) {
	m := BuildManifest(99, 6, 200)
	var a, b strings.Builder
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := BuildManifest(99, 6, 200).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("manifest JSON not byte-deterministic")
	}
	parsed, err := ParseManifest([]byte(a.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Programs) != 6 {
		t.Fatalf("parsed %d programs, want 6", len(parsed.Programs))
	}
	for i := range parsed.Programs {
		if _, err := parsed.Regenerate(i); err != nil {
			t.Fatalf("regenerate %d: %v", i, err)
		}
	}
	// Fingerprint drift must be loud.
	parsed.Programs[0].Fingerprint = "0000000000000000"
	if _, err := parsed.Regenerate(0); err == nil {
		t.Fatal("fingerprint mismatch not reported")
	}
	// Unknown versions are hard errors.
	bad := strings.Replace(a.String(), "\"version\": 1", "\"version\": 999", 1)
	if _, err := ParseManifest([]byte(bad)); err == nil {
		t.Fatal("future manifest version accepted")
	}
	// Truncated JSON is a hard error.
	if _, err := ParseManifest([]byte(a.String()[:len(a.String())/2])); err == nil {
		t.Fatal("truncated manifest accepted")
	}
}

// TestAxesForSeedDeterministicAndDiverse: axes are a pure function of the
// seed, respect the size cap, and a small seed range covers several values
// of every axis.
func TestAxesForSeedDeterministicAndDiverse(t *testing.T) {
	sizes := map[int]bool{}
	shapes := map[Shape]bool{}
	for seed := int64(0); seed < 64; seed++ {
		a := AxesForSeed(seed, 640)
		if a != AxesForSeed(seed, 640) {
			t.Fatalf("seed %d: axes not deterministic", seed)
		}
		if a.Size > 640 {
			t.Fatalf("seed %d: size %d exceeds cap", seed, a.Size)
		}
		if err := a.Options().Validate(); err != nil {
			t.Fatalf("seed %d: axes map to invalid options: %v", seed, err)
		}
		sizes[a.Size] = true
		shapes[a.Shape] = true
	}
	if len(sizes) < 3 || len(shapes) < 4 {
		t.Fatalf("axes not diverse over 64 seeds: %d sizes, %d shapes", len(sizes), len(shapes))
	}
}
