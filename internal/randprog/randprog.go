// Package randprog generates random, structured, always-terminating IR
// programs. The equivalence fuzz tests run each generated program through
// every partitioner/optimizer combination and compare the multi-threaded
// result with the single-threaded one — the strongest correctness check in
// the repository, validating MTCG's claim of producing correct code for
// *any* partition.
package randprog

import (
	"math/rand"

	"repro/internal/ir"
)

// Options bounds program generation.
type Options struct {
	// MaxDepth bounds nesting of loops and hammocks.
	MaxDepth int
	// MaxStmts bounds statements per block sequence.
	MaxStmts int
	// Arrays is the number of memory arrays (each arraySize words).
	Arrays int
}

// DefaultOptions returns moderate sizes: programs of a few dozen blocks.
func DefaultOptions() Options { return Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2} }

const arraySize = 16

// Program is one generated test case.
type Program struct {
	F       *ir.Function
	Objects []ir.MemObject
	Args    []int64
	Mem     []int64
}

// generator carries generation state.
type generator struct {
	rng  *rand.Rand
	b    *ir.Builder
	opts Options
	// regs are registers guaranteed to hold a value at the current
	// program point (parameters and previously assigned temporaries).
	regs []ir.Reg
	objs []ir.MemObject
	// protected registers (loop induction variables) must never be
	// clobbered by destructive updates, or termination is lost.
	protected map[ir.Reg]bool
}

// Generate builds one random program and a matching input.
func Generate(rng *rand.Rand, opts Options) *Program {
	g := &generator{rng: rng, b: ir.NewBuilder("rand"), opts: opts, protected: map[ir.Reg]bool{}}
	for i := 0; i < opts.Arrays; i++ {
		g.objs = append(g.objs, g.b.Array("arr", arraySize))
	}
	// Two integer parameters seed the data flow.
	p1 := g.b.Param()
	p2 := g.b.Param()
	g.regs = append(g.regs, p1, p2)

	g.stmts(opts.MaxDepth)

	// Live-outs: up to three known registers.
	var outs []ir.Reg
	for i := 0; i < 3 && i < len(g.regs); i++ {
		outs = append(outs, g.regs[g.rng.Intn(len(g.regs))])
	}
	g.b.Ret(outs...)
	g.b.F.SplitCriticalEdges()

	mem := make([]int64, g.b.MemSize())
	for i := range mem {
		mem[i] = int64(rng.Intn(201) - 100)
	}
	return &Program{
		F:       g.b.F,
		Objects: g.objs,
		Args:    []int64{int64(rng.Intn(50) - 25), int64(rng.Intn(50) - 25)},
		Mem:     mem,
	}
}

// RandomPartition assigns every schedulable instruction of f a uniform
// random thread in [0, n) — the adversarial partition MTCG must still
// generate correct code for. It is the partition source the equivalence
// fuzz tests and the differential oracle stress, alongside the real
// partitioners.
func RandomPartition(rng *rand.Rand, f *ir.Function, n int) map[*ir.Instr]int {
	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		assign[in] = rng.Intn(n)
	})
	return assign
}

// pick returns a random known register.
func (g *generator) pick() ir.Reg { return g.regs[g.rng.Intn(len(g.regs))] }

// addr emits a guaranteed-in-bounds address into a random array: base +
// (value & (arraySize-1)).
func (g *generator) addr() ir.Reg {
	obj := g.objs[g.rng.Intn(len(g.objs))]
	idx := g.b.And(g.pick(), g.b.Const(arraySize-1))
	masked := g.b.Abs(idx)
	return g.b.Add(g.b.AddrOf(obj), masked)
}

// stmts emits a random statement sequence into the current block, possibly
// ending in nested control flow that resumes in a fresh block.
func (g *generator) stmts(depth int) {
	n := 1 + g.rng.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(10); {
		case k < 4: // arithmetic into a fresh register
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.CmpLT, ir.CmpGT, ir.CmpEQ}
			r := g.b.Op2(ops[g.rng.Intn(len(ops))], g.pick(), g.pick())
			g.regs = append(g.regs, r)
		case k < 5: // destructive update of an existing register
			dst := g.pick()
			if g.protected[dst] {
				dst = g.b.F.NewReg()
				g.regs = append(g.regs, dst)
			}
			g.b.Op2To(dst, ir.Add, g.pick(), g.pick())
		case k < 6 && g.opts.Arrays > 0: // load
			r := g.b.Load(g.addr(), 0)
			g.regs = append(g.regs, r)
		case k < 7 && g.opts.Arrays > 0: // store
			g.b.Store(g.pick(), g.addr(), 0)
		case k < 9 && depth > 0: // hammock
			g.hammock(depth - 1)
		case depth > 0: // bounded loop
			g.loop(depth - 1)
		default:
			r := g.b.Add(g.pick(), g.b.Const(int64(g.rng.Intn(9))))
			g.regs = append(g.regs, r)
		}
	}
}

// hammock emits if (cond) {stmts} [else {stmts}] converging in a new block.
func (g *generator) hammock(depth int) {
	then := g.b.Block("then")
	join := g.b.Block("join")
	els := join
	hasElse := g.rng.Intn(2) == 0
	if hasElse {
		els = g.b.Block("else")
	}
	cond := g.b.CmpGT(g.pick(), g.pick())
	g.b.Br(cond, then, els)

	// Register discipline: values defined inside an arm may be unset on
	// the other path; only registers known before the hammock survive.
	outer := append([]ir.Reg(nil), g.regs...)

	g.b.SetBlock(then)
	g.stmts(depth)
	g.b.Jump(join)

	if hasElse {
		g.regs = append(g.regs[:0], outer...)
		g.b.SetBlock(els)
		g.stmts(depth)
		g.b.Jump(join)
	}
	g.regs = append(g.regs[:0], outer...)
	g.b.SetBlock(join)
}

// loop emits a counted loop with a fresh induction variable (1..4
// iterations) whose body is a random statement sequence.
func (g *generator) loop(depth int) {
	body := g.b.Block("body")
	exit := g.b.Block("exit")
	i := g.b.F.NewReg()
	g.b.ConstTo(i, 0)
	g.b.Jump(body)

	outer := append([]ir.Reg(nil), g.regs...)
	g.b.SetBlock(body)
	g.regs = append(g.regs, i)
	g.protected[i] = true
	g.stmts(depth)
	g.b.Op2To(i, ir.Add, i, g.b.Const(1))
	lim := g.b.Const(int64(1 + g.rng.Intn(4)))
	c := g.b.CmpLT(i, lim)
	g.b.Br(c, body, exit)

	g.regs = append(g.regs[:0], outer...)
	g.b.SetBlock(exit)
}
