// Package randprog generates random, structured, always-terminating IR
// programs. The equivalence fuzz tests run each generated program through
// every partitioner/optimizer combination and compare the multi-threaded
// result with the single-threaded one — the strongest correctness check in
// the repository, validating MTCG's claim of producing correct code for
// *any* partition.
//
// Beyond the legacy fuzz profile (a few dozen blocks), the generator spans
// explicit corpus axes — program size, CFG shape, aliasing density,
// live-out count, and dependence-chain (queue-pressure) skew — so a corpus
// sweep (cmd/gmtstress) can cover the scenario space the fixed benchmark
// suite cannot. Every axis is a pure function of the seed: the same seed
// and options always produce the same program, byte for byte.
package randprog

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Shape selects the CFG shape profile of generated programs.
type Shape string

const (
	// ShapeMixed is the legacy profile: hammocks and counted loops mixed
	// with straight-line code.
	ShapeMixed Shape = "mixed"
	// ShapeStraight generates single-block straight-line programs (no
	// control flow beyond the final ret) — the pure dataflow case.
	ShapeStraight Shape = "straight"
	// ShapeHammocks generates branchy but loop-free programs: nested
	// if/else diamonds only.
	ShapeHammocks Shape = "hammocks"
	// ShapeLoops generates nested counted loops, some with a second,
	// data-dependent mid-body exit — the irreducible-leaning multi-exit
	// profile that stresses region formation and loop contraction.
	ShapeLoops Shape = "loops"
)

// Shapes returns every shape, in a fixed order.
func Shapes() []Shape {
	return []Shape{ShapeMixed, ShapeStraight, ShapeHammocks, ShapeLoops}
}

// Generation limits: Options fields are clamped into these ranges by
// sanitized(), and Validate rejects values outside them so CLIs can report
// bad flags instead of silently clamping.
const (
	MaxDepthLimit    = 8
	MaxStmtsLimit    = 64
	MaxArraysLimit   = 8
	MaxTargetInstrs  = 8192
	MaxLiveOutsLimit = 16
	defaultAliasPct  = 20
	defaultChainPct  = 25
	controlSharePct  = 30
)

// Options bounds program generation. The zero value of every new axis
// keeps the legacy behavior (Shape mixed, default alias/chain mix, up to
// three live-outs, single statement pass), so DefaultOptions programs are
// unchanged in character.
type Options struct {
	// MaxDepth bounds nesting of loops and hammocks.
	MaxDepth int
	// MaxStmts bounds statements per block sequence.
	MaxStmts int
	// Arrays is the number of memory arrays (each arraySize words).
	Arrays int

	// TargetInstrs, when positive, keeps emitting top-level statement
	// sequences until the function holds at least this many instructions
	// (the corpus size axis, 10..MaxTargetInstrs). Zero means one pass.
	TargetInstrs int
	// Shape selects the CFG shape profile; "" means ShapeMixed.
	Shape Shape
	// AliasDensity is the approximate percentage of statements that are
	// memory operations (loads/stores into the shared arrays); 0 means the
	// default mix (~20%). Ignored when Arrays == 0.
	AliasDensity int
	// LiveOuts, when positive, is the exact number of distinct live-out
	// registers named by the final ret (capped by the registers available);
	// 0 means the legacy up-to-three random picks.
	LiveOuts int
	// QueuePressure is the percentage of arithmetic statements that extend
	// the newest dependence chain instead of drawing random operands; high
	// values produce long serial chains that, under any cross-thread
	// partition, turn into heavy produce/consume traffic. 0 means the
	// default (~25%).
	QueuePressure int
}

// DefaultOptions returns moderate sizes: programs of a few dozen blocks.
func DefaultOptions() Options { return Options{MaxDepth: 3, MaxStmts: 5, Arrays: 2} }

// Validate reports whether every option is inside its generation limit.
// Generate itself never panics — it clamps out-of-range values — but a
// CLI should reject them loudly instead.
func (o Options) Validate() error {
	switch {
	case o.MaxDepth < 0 || o.MaxDepth > MaxDepthLimit:
		return fmt.Errorf("randprog: MaxDepth %d out of range [0, %d]", o.MaxDepth, MaxDepthLimit)
	case o.MaxStmts < 1 || o.MaxStmts > MaxStmtsLimit:
		return fmt.Errorf("randprog: MaxStmts %d out of range [1, %d]", o.MaxStmts, MaxStmtsLimit)
	case o.Arrays < 0 || o.Arrays > MaxArraysLimit:
		return fmt.Errorf("randprog: Arrays %d out of range [0, %d]", o.Arrays, MaxArraysLimit)
	case o.TargetInstrs < 0 || o.TargetInstrs > MaxTargetInstrs:
		return fmt.Errorf("randprog: TargetInstrs %d out of range [0, %d]", o.TargetInstrs, MaxTargetInstrs)
	case o.AliasDensity < 0 || o.AliasDensity > 100:
		return fmt.Errorf("randprog: AliasDensity %d out of range [0, 100]", o.AliasDensity)
	case o.QueuePressure < 0 || o.QueuePressure > 100:
		return fmt.Errorf("randprog: QueuePressure %d out of range [0, 100]", o.QueuePressure)
	case o.LiveOuts < 0 || o.LiveOuts > MaxLiveOutsLimit:
		return fmt.Errorf("randprog: LiveOuts %d out of range [0, %d]", o.LiveOuts, MaxLiveOutsLimit)
	}
	switch o.Shape {
	case "", ShapeMixed, ShapeStraight, ShapeHammocks, ShapeLoops:
	default:
		return fmt.Errorf("randprog: unknown Shape %q (want mixed, straight, hammocks, or loops)", o.Shape)
	}
	return nil
}

// clamp returns v forced into [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sanitized clamps every field into its valid range so generation can
// never panic (rand.Intn(0)) or run away, whatever a caller passes.
func (o Options) sanitized() Options {
	o.MaxDepth = clamp(o.MaxDepth, 0, MaxDepthLimit)
	o.MaxStmts = clamp(o.MaxStmts, 1, MaxStmtsLimit)
	o.Arrays = clamp(o.Arrays, 0, MaxArraysLimit)
	o.TargetInstrs = clamp(o.TargetInstrs, 0, MaxTargetInstrs)
	if o.AliasDensity == 0 {
		o.AliasDensity = defaultAliasPct
	}
	o.AliasDensity = clamp(o.AliasDensity, 0, 100)
	if o.QueuePressure == 0 {
		o.QueuePressure = defaultChainPct
	}
	o.QueuePressure = clamp(o.QueuePressure, 0, 100)
	o.LiveOuts = clamp(o.LiveOuts, 0, MaxLiveOutsLimit)
	switch o.Shape {
	case ShapeStraight, ShapeHammocks, ShapeLoops:
	default:
		o.Shape = ShapeMixed
	}
	return o
}

const arraySize = 16

// Program is one generated test case.
type Program struct {
	F       *ir.Function
	Objects []ir.MemObject
	Args    []int64
	Mem     []int64
}

// generator carries generation state.
type generator struct {
	rng  *rand.Rand
	b    *ir.Builder
	opts Options
	// cap is the hard instruction budget: once reached, no new control
	// flow opens, so in-progress sequences drain with straight-line code
	// and generation always terminates near the target size. Without it,
	// deep MaxDepth × wide MaxStmts combinations blow up exponentially.
	cap int
	// regs are registers guaranteed to hold a value at the current
	// program point (parameters and previously assigned temporaries).
	regs []ir.Reg
	objs []ir.MemObject
	// protected registers (loop induction variables) must never be
	// clobbered by destructive updates, or termination is lost.
	protected map[ir.Reg]bool
}

// Generate builds one random program and a matching input. Options are
// sanitized first, so any value — including zero or negative bounds — is
// safe; use Validate to reject out-of-range options explicitly.
func Generate(rng *rand.Rand, opts Options) *Program {
	opts = opts.sanitized()
	g := &generator{rng: rng, b: ir.NewBuilder("rand"), opts: opts, protected: map[ir.Reg]bool{}}
	g.cap = opts.TargetInstrs
	if g.cap == 0 {
		g.cap = MaxTargetInstrs
	}
	for i := 0; i < opts.Arrays; i++ {
		g.objs = append(g.objs, g.b.Array("arr", arraySize))
	}
	// Two integer parameters seed the data flow.
	p1 := g.b.Param()
	p2 := g.b.Param()
	g.regs = append(g.regs, p1, p2)

	// The size axis: keep appending top-level sequences until the target
	// is met. Every stmts call emits at least one instruction, so this
	// terminates.
	g.stmts(opts.MaxDepth)
	for opts.TargetInstrs > 0 && g.b.F.NumInstrs() < opts.TargetInstrs {
		g.stmts(opts.MaxDepth)
	}

	g.b.Ret(g.liveOuts()...)
	g.b.F.SplitCriticalEdges()

	mem := make([]int64, g.b.MemSize())
	for i := range mem {
		mem[i] = int64(rng.Intn(201) - 100)
	}
	return &Program{
		F:       g.b.F,
		Objects: g.objs,
		Args:    []int64{int64(rng.Intn(50) - 25), int64(rng.Intn(50) - 25)},
		Mem:     mem,
	}
}

// liveOuts picks the registers the final ret names. With the LiveOuts
// axis set it samples exactly that many distinct registers; otherwise the
// legacy up-to-three picks (duplicates allowed) keep old seeds unchanged
// in character.
func (g *generator) liveOuts() []ir.Reg {
	var outs []ir.Reg
	if n := g.opts.LiveOuts; n > 0 {
		perm := g.rng.Perm(len(g.regs))
		for i := 0; i < n && i < len(perm); i++ {
			outs = append(outs, g.regs[perm[i]])
		}
		return outs
	}
	for i := 0; i < 3 && i < len(g.regs); i++ {
		outs = append(outs, g.regs[g.rng.Intn(len(g.regs))])
	}
	return outs
}

// RandomPartition assigns every schedulable instruction of f a uniform
// random thread in [0, n) — the adversarial partition MTCG must still
// generate correct code for. It is the partition source the equivalence
// fuzz tests and the differential oracle stress, alongside the real
// partitioners.
func RandomPartition(rng *rand.Rand, f *ir.Function, n int) map[*ir.Instr]int {
	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		assign[in] = rng.Intn(n)
	})
	return assign
}

// pick returns a random known register.
func (g *generator) pick() ir.Reg { return g.regs[g.rng.Intn(len(g.regs))] }

// chainPick returns the newest register with probability QueuePressure —
// extending the longest dependence chain — and a random one otherwise.
func (g *generator) chainPick() ir.Reg {
	if g.rng.Intn(100) < g.opts.QueuePressure {
		return g.regs[len(g.regs)-1]
	}
	return g.pick()
}

// addr emits a guaranteed-in-bounds address into a random array: base +
// (value & (arraySize-1)).
func (g *generator) addr() ir.Reg {
	obj := g.objs[g.rng.Intn(len(g.objs))]
	idx := g.b.And(g.pick(), g.b.Const(arraySize-1))
	masked := g.b.Abs(idx)
	return g.b.Add(g.b.AddrOf(obj), masked)
}

// stmts emits a random statement sequence into the current block, possibly
// ending in nested control flow that resumes in a fresh block.
func (g *generator) stmts(depth int) {
	n := 1 + g.rng.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

// stmt emits one statement, weighted by the aliasing-density and shape
// axes: memory traffic with weight AliasDensity, control flow (when depth
// remains and the shape allows it) with a fixed share, arithmetic for the
// rest.
func (g *generator) stmt(depth int) {
	wMem := 0
	if g.opts.Arrays > 0 {
		wMem = g.opts.AliasDensity
	}
	wCtl := 0
	if depth > 0 && g.opts.Shape != ShapeStraight && g.b.F.NumInstrs() < g.cap {
		wCtl = controlSharePct
	}
	wArith := 100 - wMem
	if wArith < 10 {
		wArith = 10
	}
	switch roll := g.rng.Intn(wMem + wCtl + wArith); {
	case roll < wMem:
		if g.rng.Intn(2) == 0 {
			r := g.b.Load(g.addr(), 0)
			g.regs = append(g.regs, r)
		} else {
			g.b.Store(g.pick(), g.addr(), 0)
		}
	case roll < wMem+wCtl:
		g.control(depth - 1)
	default:
		g.arith()
	}
}

// arith emits one arithmetic statement: usually a fresh-register binary
// op (chain-biased by the queue-pressure axis), sometimes a destructive
// update or a small immediate add.
func (g *generator) arith() {
	switch k := g.rng.Intn(10); {
	case k < 7: // binary op into a fresh register
		ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.CmpLT, ir.CmpGT, ir.CmpEQ}
		r := g.b.Op2(ops[g.rng.Intn(len(ops))], g.chainPick(), g.pick())
		g.regs = append(g.regs, r)
	case k < 9: // destructive update of an existing register
		dst := g.pick()
		if g.protected[dst] {
			dst = g.b.F.NewReg()
			g.regs = append(g.regs, dst)
		}
		g.b.Op2To(dst, ir.Add, g.chainPick(), g.pick())
	default:
		r := g.b.Add(g.chainPick(), g.b.Const(int64(g.rng.Intn(9))))
		g.regs = append(g.regs, r)
	}
}

// control emits one nested control-flow construct per the shape axis.
func (g *generator) control(depth int) {
	switch g.opts.Shape {
	case ShapeHammocks:
		g.hammock(depth)
	case ShapeLoops:
		g.loop(depth)
	default: // mixed: legacy 2/3 hammock, 1/3 loop
		if g.rng.Intn(3) < 2 {
			g.hammock(depth)
		} else {
			g.loop(depth)
		}
	}
}

// hammock emits if (cond) {stmts} [else {stmts}] converging in a new block.
func (g *generator) hammock(depth int) {
	then := g.b.Block("then")
	join := g.b.Block("join")
	els := join
	hasElse := g.rng.Intn(2) == 0
	if hasElse {
		els = g.b.Block("else")
	}
	cond := g.b.CmpGT(g.pick(), g.pick())
	g.b.Br(cond, then, els)

	// Register discipline: values defined inside an arm may be unset on
	// the other path; only registers known before the hammock survive.
	outer := append([]ir.Reg(nil), g.regs...)

	g.b.SetBlock(then)
	g.stmts(depth)
	g.b.Jump(join)

	if hasElse {
		g.regs = append(g.regs[:0], outer...)
		g.b.SetBlock(els)
		g.stmts(depth)
		g.b.Jump(join)
	}
	g.regs = append(g.regs[:0], outer...)
	g.b.SetBlock(join)
}

// loop emits a counted loop with a fresh induction variable (1..4
// iterations) whose body is a random statement sequence. Under the loops
// shape, half the loops additionally take a data-dependent mid-body exit —
// the multi-exit, irreducible-leaning profile (still reducible: one entry)
// that stresses region formation and loop contraction.
func (g *generator) loop(depth int) {
	body := g.b.Block("body")
	exit := g.b.Block("exit")
	i := g.b.F.NewReg()
	g.b.ConstTo(i, 0)
	g.b.Jump(body)

	outer := append([]ir.Reg(nil), g.regs...)
	g.b.SetBlock(body)
	g.regs = append(g.regs, i)
	g.protected[i] = true
	g.stmts(depth)
	if g.opts.Shape == ShapeLoops && g.rng.Intn(2) == 0 {
		// Second exit: a break edge out of the middle of the body. The
		// loop still terminates via the counted latch even when the break
		// condition never fires.
		cont := g.b.Block("cont")
		brk := g.b.CmpGT(g.pick(), g.pick())
		g.b.Br(brk, exit, cont)
		g.b.SetBlock(cont)
		g.stmts(depth)
	}
	g.b.Op2To(i, ir.Add, i, g.b.Const(1))
	lim := g.b.Const(int64(1 + g.rng.Intn(4)))
	c := g.b.CmpLT(i, lim)
	g.b.Br(c, body, exit)

	g.regs = append(g.regs[:0], outer...)
	g.b.SetBlock(exit)
}
