package randprog_test

import (
	"math/rand"
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/randprog"
)

const fuzzSteps = 5_000_000

// runST executes the original program.
func runST(t *testing.T, p *randprog.Program) *interp.Result {
	t.Helper()
	res, err := interp.Run(p.F, p.Args, append([]int64(nil), p.Mem...), fuzzSteps)
	if err != nil {
		t.Fatalf("single-threaded run: %v\n%s", err, p.F)
	}
	return res
}

// checkEquivalent generates MT code for a plan and compares against the ST
// result.
func checkEquivalent(t *testing.T, p *randprog.Program, plan *mtcg.Plan,
	assign map[*ir.Instr]int, st *interp.Result, label string) {
	t.Helper()
	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatalf("%s: Generate: %v\n%s", label, err, p.F)
	}
	for _, ft := range prog.Threads {
		if err := ft.Verify(); err != nil {
			t.Fatalf("%s: thread invalid: %v\n%s", label, err, ft)
		}
	}
	queue.Allocate(prog)
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues, Assign: assign,
		Args: p.Args, Mem: append([]int64(nil), p.Mem...), MaxSteps: fuzzSteps,
	})
	if err != nil {
		t.Fatalf("%s: MT run: %v\noriginal:\n%s", label, err, p.F)
	}
	if len(mt.LiveOuts) != len(st.LiveOuts) {
		t.Fatalf("%s: %d live-outs, want %d", label, len(mt.LiveOuts), len(st.LiveOuts))
	}
	for i := range st.LiveOuts {
		if mt.LiveOuts[i] != st.LiveOuts[i] {
			t.Fatalf("%s: live-out %d = %d, want %d\noriginal:\n%s",
				label, i, mt.LiveOuts[i], st.LiveOuts[i], p.F)
		}
	}
	for a := range st.Mem {
		if mt.Mem[a] != st.Mem[a] {
			t.Fatalf("%s: mem[%d] = %d, want %d\noriginal:\n%s",
				label, a, mt.Mem[a], st.Mem[a], p.F)
		}
	}
}

// randomPartition assigns every schedulable instruction a uniform random
// thread — the adversarial case MTCG must still handle.
func randomPartition(rng *rand.Rand, f *ir.Function, n int) map[*ir.Instr]int {
	return randprog.RandomPartition(rng, f, n)
}

// FuzzEquivalence is the native-fuzzing form of the seeded equivalence
// loops below (which remain as deterministic smoke tests): one seed maps
// to one generated program, checked under random partitions and both
// communication plans. Run with
//
//	go test -fuzz=FuzzEquivalence ./internal/randprog
func FuzzEquivalence(f *testing.F) {
	for _, seed := range []int64{2024, 777, 31337, 55} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randprog.Generate(rng, randprog.DefaultOptions())
		if err := p.F.Verify(); err != nil {
			t.Fatalf("generated program invalid: %v\n%s", err, p.F)
		}
		st := runST(t, p)
		g := pdg.Build(p.F, p.Objects)
		for _, threads := range []int{2, 3} {
			assign := randprog.RandomPartition(rng, p.F, threads)
			checkEquivalent(t, p, mtcg.NaivePlan(p.F, g, assign, threads), assign, st, "naive")
			cp, err := coco.Plan(p.F, g, assign, threads, st.Profile, coco.DefaultOptions())
			if err != nil {
				t.Fatalf("coco.Plan: %v\n%s", err, p.F)
			}
			checkEquivalent(t, p, cp, assign, st, "coco")
		}
	})
}

func TestFuzzEquivalenceRandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		if err := p.F.Verify(); err != nil {
			t.Fatalf("trial %d: generated program invalid: %v", trial, err)
		}
		st := runST(t, p)
		g := pdg.Build(p.F, p.Objects)
		for _, threads := range []int{2, 3} {
			assign := randomPartition(rng, p.F, threads)
			naive := mtcg.NaivePlan(p.F, g, assign, threads)
			checkEquivalent(t, p, naive, assign, st, "naive")

			cp, err := coco.Plan(p.F, g, assign, threads, st.Profile, coco.DefaultOptions())
			if err != nil {
				t.Fatalf("trial %d: coco.Plan: %v\n%s", trial, err, p.F)
			}
			checkEquivalent(t, p, cp, assign, st, "coco")
		}
	}
}

func TestFuzzEquivalenceRealPartitioners(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		st := runST(t, p)
		g := pdg.Build(p.F, p.Objects)
		for _, part := range []partition.Partitioner{partition.DSWP{}, partition.GREMIO{}} {
			assign, err := part.Partition(p.F, g, st.Profile, 2)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, part.Name(), err)
			}
			naive := mtcg.NaivePlan(p.F, g, assign, 2)
			checkEquivalent(t, p, naive, assign, st, part.Name()+"/naive")

			cp, err := coco.Plan(p.F, g, assign, 2, st.Profile, coco.DefaultOptions())
			if err != nil {
				t.Fatalf("trial %d: %s coco: %v", trial, part.Name(), err)
			}
			checkEquivalent(t, p, cp, assign, st, part.Name()+"/coco")
		}
	}
}

func TestFuzzCOCONeverIncreasesCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		st := runST(t, p)
		g := pdg.Build(p.F, p.Objects)
		assign, err := partition.GREMIO{}.Partition(p.F, g, st.Profile, 2)
		if err != nil {
			t.Fatal(err)
		}
		run := func(plan *mtcg.Plan) int64 {
			prog, err := mtcg.Generate(plan)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: prog.Threads, NumQueues: prog.NumQueues, Assign: assign,
				Args: p.Args, Mem: append([]int64(nil), p.Mem...), MaxSteps: fuzzSteps,
			})
			if err != nil {
				t.Fatalf("RunMT: %v", err)
			}
			return mt.Stats.Comm()
		}
		naive := run(mtcg.NaivePlan(p.F, g, assign, 2))
		cp, err := coco.Plan(p.F, g, assign, 2, st.Profile, coco.DefaultOptions())
		if err != nil {
			t.Fatalf("coco.Plan: %v", err)
		}
		if opt := run(cp); opt > naive {
			t.Errorf("trial %d: COCO increased communication %d -> %d\n%s",
				trial, naive, opt, p.F)
		}
	}
}

func TestGeneratedProgramsAreReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var totalBlocks, totalInstrs int
	for i := 0; i < 20; i++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		if err := p.F.Verify(); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		totalBlocks += len(p.F.Blocks)
		totalInstrs += p.F.NumInstrs()
	}
	if totalBlocks < 20*3 {
		t.Errorf("programs too small: %d blocks across 20 trials", totalBlocks)
	}
	if totalInstrs < 20*10 {
		t.Errorf("programs too small: %d instrs across 20 trials", totalInstrs)
	}
}

// TestFuzzPrintParseRoundTrip checks that every generated program (and its
// generated thread functions, which contain communication instructions)
// survives a print→parse→print round trip.
func TestFuzzPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		text := p.F.String()
		g, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Parse: %v\n%s", trial, err, text)
		}
		if got := g.String(); got != text {
			t.Fatalf("trial %d: round trip diverged:\n--- first ---\n%s\n--- second ---\n%s", trial, text, got)
		}

		st := runST(t, p)
		dg := pdg.Build(p.F, p.Objects)
		assign := randomPartition(rng, p.F, 2)
		prog, err := mtcg.Generate(mtcg.NaivePlan(p.F, dg, assign, 2))
		if err != nil {
			t.Fatalf("trial %d: Generate: %v", trial, err)
		}
		_ = st
		for _, ft := range prog.Threads {
			text := ft.String()
			g, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("trial %d: Parse thread: %v\n%s", trial, err, text)
			}
			if got := g.String(); got != text {
				t.Fatalf("trial %d: thread round trip diverged:\n%s\nvs\n%s", trial, text, got)
			}
		}
	}
}
