package fault

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/mtcg"
)

// drive presents n produce opportunities to an injector and returns the
// observed (queue, value, multiplicity) decisions.
type decision struct {
	q     int
	v     int64
	times int
}

func drive(inj *Injector, n, numQueues int, data bool) []decision {
	var ds []decision
	for k := 0; k < n; k++ {
		q, v, times := inj.Produce(0, k%numQueues, int64(100+k), numQueues, data)
		ds = append(ds, decision{q, v, times})
	}
	return ds
}

func TestScheduleDeterminism(t *testing.T) {
	for _, cls := range RuntimeClasses() {
		spec := Spec{Class: cls, Seed: 42}
		a, b := spec.New(), spec.New()
		da := drive(a, 2000, 3, true)
		db := drive(b, 2000, 3, true)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: decision %d differs: %+v vs %+v", cls, i, da[i], db[i])
			}
		}
		if a.Schedule() != b.Schedule() {
			t.Errorf("%s: schedules differ:\n%s\nvs\n%s", cls, a.Schedule(), b.Schedule())
		}
		if a.Count() != b.Count() {
			t.Errorf("%s: counts differ: %d vs %d", cls, a.Count(), b.Count())
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := Spec{Class: DropProduce, Seed: 1}.New()
	b := Spec{Class: DropProduce, Seed: 2}.New()
	da, db := drive(a, 2000, 2, true), drive(b, 2000, 2, true)
	same := true
	for i := range da {
		if da[i] != db[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical drop schedules")
	}
}

func TestDropAndDupFire(t *testing.T) {
	for _, tc := range []struct {
		cls  Class
		mult int
	}{{DropProduce, 0}, {DupProduce, 2}} {
		inj := Spec{Class: tc.cls, Seed: 7}.New()
		ds := drive(inj, 2000, 2, true)
		fired := 0
		for _, d := range ds {
			if d.times == tc.mult {
				fired++
			} else if d.times != 1 {
				t.Fatalf("%s: unexpected multiplicity %d", tc.cls, d.times)
			}
		}
		if fired == 0 {
			t.Errorf("%s: never fired in 2000 opportunities", tc.cls)
		}
		if int64(fired) != inj.Count() {
			t.Errorf("%s: fired %d but Count() = %d", tc.cls, fired, inj.Count())
		}
		// Firing pattern is offset + k*period: at most 1 + 1999/97 ≈ 21.
		if fired > 21 {
			t.Errorf("%s: fired %d times — period too dense", tc.cls, fired)
		}
	}
}

func TestCorruptOnlyData(t *testing.T) {
	inj := Spec{Class: CorruptValue, Seed: 3}.New()
	for k, d := range drive(inj, 2000, 2, false) {
		if d.times != 1 || d.v != int64(100+k) {
			t.Fatalf("sync token %d mutated: %+v", k, d)
		}
	}
	if inj.Count() != 0 {
		t.Errorf("corrupt-value fired %d times on sync tokens", inj.Count())
	}
	inj2 := Spec{Class: CorruptValue, Seed: 3}.New()
	corrupted := 0
	for k := 0; k < 2000; k++ {
		_, v, times := inj2.Produce(0, 0, 1000, 2, true)
		if times != 1 {
			t.Fatalf("corrupt changed multiplicity to %d", times)
		}
		if v != 1000 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("corrupt-value never corrupted a data value")
	}
	if int64(corrupted) != inj2.Count() {
		t.Errorf("corrupted %d values but Count() = %d", corrupted, inj2.Count())
	}
}

func TestSwapNeedsTwoQueues(t *testing.T) {
	inj := Spec{Class: SwapQueue, Seed: 5}.New()
	for _, d := range drive(inj, 2000, 1, true) {
		if d.q != 0 {
			t.Fatalf("swap redirected with a single queue: %+v", d)
		}
	}
	if inj.Count() != 0 {
		t.Errorf("swap fired %d times with nowhere to misdirect", inj.Count())
	}
	inj2 := Spec{Class: SwapQueue, Seed: 5}.New()
	swapped := 0
	for k := 0; k < 2000; k++ {
		q, _, _ := inj2.Produce(0, 1, 0, 4, true)
		if q != 1 {
			swapped++
			if q < 0 || q >= 4 {
				t.Fatalf("swap target q%d out of range", q)
			}
		}
	}
	if swapped == 0 {
		t.Error("swap-queue never misdirected with 4 queues")
	}
}

func TestQueueCapShrink(t *testing.T) {
	inj := Spec{Class: ShrinkQueue, Seed: 1}.New()
	if got := inj.QueueCap(32); got != 16 {
		t.Errorf("QueueCap(32) = %d, want 16", got)
	}
	if inj.Count() != 1 {
		t.Errorf("shrink recorded %d events, want 1", inj.Count())
	}
	one := Spec{Class: ShrinkQueue, Seed: 1}.New()
	if got := one.QueueCap(1); got != 1 {
		t.Errorf("QueueCap(1) = %d, want 1 (never below one)", got)
	}
	if one.Count() != 0 {
		t.Error("vacuous shrink (cap 1) still counted as injected")
	}
	noop := Spec{Class: DropProduce, Seed: 1}.New()
	if noop.QueueCap(32) != 32 {
		t.Error("non-shrink class changed the queue capacity")
	}
}

func TestStallExpires(t *testing.T) {
	inj := Spec{Class: StallThread, Seed: 9}.New()
	frozen := 0
	for turn := 0; turn < 10_000; turn++ {
		for ti := 0; ti < 3; ti++ {
			if inj.Stall(ti, 3) {
				frozen++
			}
		}
	}
	if frozen == 0 {
		t.Fatal("stall-thread never froze a thread")
	}
	if frozen > 64+193 {
		t.Errorf("frozen %d turns, want at most the seeded window (<= 257)", frozen)
	}
	// The window is spent: no further freezes, ever.
	for turn := 0; turn < 1000; turn++ {
		for ti := 0; ti < 3; ti++ {
			if inj.Stall(ti, 3) {
				t.Fatal("stall froze again after its window expired")
			}
		}
	}
	if inj.Count() != int64(frozen) {
		t.Errorf("froze %d turns but Count() = %d", frozen, inj.Count())
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var inj *Injector
	if q, v, times := inj.Produce(0, 3, 77, 5, true); q != 3 || v != 77 || times != 1 {
		t.Errorf("nil injector mutated a produce: q=%d v=%d times=%d", q, v, times)
	}
	if inj.Stall(0, 2) {
		t.Error("nil injector stalled a thread")
	}
	if inj.QueueCap(32) != 32 {
		t.Error("nil injector changed the queue capacity")
	}
	if inj.Count() != 0 {
		t.Error("nil injector reports injections")
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(string(c))
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if !StallThread.Benign() || !ShrinkQueue.Benign() || DropProduce.Benign() {
		t.Error("Benign classification wrong")
	}
}

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func testProgram(t *testing.T, queues int) *mtcg.Program {
	t.Helper()
	var prod, cons strings.Builder
	prod.WriteString("func t0(r1)\nentry:\n")
	cons.WriteString("func t1(r1)\nentry:\n")
	for q := 0; q < queues; q++ {
		prod.WriteString("\tproduce [q" + string(rune('0'+q)) + "] = r1\n")
		cons.WriteString("\tr2 = consume [q" + string(rune('0'+q)) + "]\n")
	}
	prod.WriteString("\tret\n")
	cons.WriteString("\tret\n")
	return &mtcg.Program{
		Threads:    []*ir.Function{mustParse(t, prod.String()), mustParse(t, cons.String())},
		NumQueues:  queues,
		NumThreads: 2,
	}
}

func TestMisplanDeterministicAndNonMutating(t *testing.T) {
	prog := testProgram(t, 3)
	m1, d1, ok1, err1 := Misplan(prog, 11)
	m2, d2, ok2, err2 := Misplan(prog, 11)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("Misplan failed: %v %v ok=%v,%v", err1, err2, ok1, ok2)
	}
	if d1 != d2 {
		t.Errorf("same seed gave different mutations: %q vs %q", d1, d2)
	}
	if m1.Threads[1].String() != m2.Threads[1].String() {
		t.Error("same seed gave different mutated programs")
	}
	// The original is untouched: every consume still reads its own queue.
	q := 0
	prog.Threads[1].Instrs(func(in *ir.Instr) {
		if in.Op == ir.Consume {
			if in.Queue != q {
				t.Errorf("original program mutated: consume %d reads q%d", q, in.Queue)
			}
			q++
		}
	})
	// The mutation changed exactly one consume's queue.
	if m1.Threads[1].String() == prog.Threads[1].String() {
		t.Error("mutated consumer is identical to the original")
	}
}

func TestMisplanSingleQueueGoesOutOfRange(t *testing.T) {
	prog := testProgram(t, 1)
	m, desc, ok, err := Misplan(prog, 5)
	if err != nil || !ok {
		t.Fatalf("Misplan: %v ok=%v", err, ok)
	}
	if !strings.Contains(desc, "q1") {
		t.Errorf("single-queue misplan should rewire out of range, got %q", desc)
	}
	found := false
	m.Threads[1].Instrs(func(in *ir.Instr) {
		if in.Op == ir.Consume && in.Queue == 1 {
			found = true
		}
	})
	if !found {
		t.Error("mutated consume with out-of-range queue not found")
	}
}

func TestMisplanNoComm(t *testing.T) {
	f := mustParse(t, "func t0(r1)\nentry:\n\tret\n")
	prog := &mtcg.Program{Threads: []*ir.Function{f}, NumQueues: 0, NumThreads: 1}
	if _, _, ok, err := Misplan(prog, 1); ok || err != nil {
		t.Errorf("Misplan on comm-free program: ok=%v err=%v, want vacuous", ok, err)
	}
}
