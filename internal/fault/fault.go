// Package fault is the deterministic fault-injection layer of the runtime.
// It exists to prove the system's detectors — ir.Verify, the oracle's
// invariant checks, interp.ErrDeadlock, the differential comparison against
// the single-threaded golden run — actually catch the fault classes they
// claim to, the same way mutation testing proves a test suite catches
// mutants.
//
// Everything here is seeded and replayable: an Injector's decisions are a
// pure function of its Spec and the sequence of injection opportunities the
// runtime presents, and the runtimes themselves are deterministic, so the
// same seed produces the same fault schedule, byte for byte, on every run.
// No wall-clock time and no global randomness are ever consulted.
//
// The runtime classes are intercepted at the synchronization-array hooks of
// the multi-threaded interpreter (interp.MTConfig.Inject) and the
// cycle-level simulator (sim.RunInjected); MisplacePlan is a compile-time
// fault that corrupts a generated program's queue ownership before it runs.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/mtcg"
)

// Class names one fault class.
type Class string

const (
	// DropProduce models a lost synchronization-array write: the produce
	// instruction issues and is accounted, but the value never lands in
	// the queue. Expected detection: deadlock (the consumer starves) or a
	// queue-ownership/traffic invariant violation.
	DropProduce Class = "drop-produce"
	// DupProduce models a doubled SA write: one produce enqueues its value
	// twice. Expected detection: live-out mismatch (the value stream
	// shifts) or a queue-balance violation.
	DupProduce Class = "dup-produce"
	// CorruptValue models a bit-flipped data value in flight: the enqueued
	// value is XORed with a seed-derived mask. Sync tokens (whose value is
	// ignored) are never corrupted — that would be undetectable by
	// construction. Expected detection: live-out or memory mismatch.
	CorruptValue Class = "corrupt-value"
	// SwapQueue models a mis-addressed SA write: a produce lands in a
	// different queue. Expected detection: deadlock or an ownership
	// violation. Vacuous on single-queue programs.
	SwapQueue Class = "swap-queue"
	// StallThread freezes one thread (core) for a bounded window. It is
	// semantics-preserving — a correct MTCG program is schedule
	// independent — so the run must complete with correct results.
	StallThread Class = "stall-thread"
	// ShrinkQueue halves the synchronization-array queue capacity (never
	// below one entry). Also semantics-preserving: MTCG correctness holds
	// at every capacity >= 1. Vacuous when the capacity is already 1.
	ShrinkQueue Class = "shrink-queue"
	// MisplacePlan is the compile-time fault: a generated program's queue
	// ownership is corrupted (one consume rewired to the wrong queue), the
	// "mis-specified plan" case. Expected detection: the oracle's queue
	// ownership check, before a single instruction runs.
	MisplacePlan Class = "misplan"
)

// Classes returns every fault class, in a fixed report order.
func Classes() []Class {
	return []Class{DropProduce, DupProduce, CorruptValue, SwapQueue,
		StallThread, ShrinkQueue, MisplacePlan}
}

// RuntimeClasses returns the classes injected through runtime hooks
// (everything except the compile-time MisplacePlan).
func RuntimeClasses() []Class {
	return []Class{DropProduce, DupProduce, CorruptValue, SwapQueue,
		StallThread, ShrinkQueue}
}

// Benign reports whether the class preserves program semantics: a correct
// runtime must *tolerate* it (complete with correct results) rather than
// detect it.
func (c Class) Benign() bool { return c == StallThread || c == ShrinkQueue }

// ParseClass resolves a CLI spelling to a class.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if string(c) == s {
			return c, nil
		}
	}
	var names []string
	for _, c := range Classes() {
		names = append(names, string(c))
	}
	return "", fmt.Errorf("fault: unknown class %q (want one of %s)", s, strings.Join(names, ", "))
}

// Spec names a fault schedule: a class plus the seed that parameterizes
// where it fires. A Spec is immutable and comparable; each executor run
// instantiates its own stateful Injector with New, so concurrent runs never
// share mutable state and every run sees the same schedule.
type Spec struct {
	Class Class
	Seed  int64
}

// String renders the spec for reports and reproducer labels.
func (s Spec) String() string { return fmt.Sprintf("%s(seed=%d)", s.Class, s.Seed) }

// New instantiates a fresh injector for one executor run.
func (s Spec) New() *Injector {
	i := &Injector{spec: s}
	h := Splitmix(uint64(s.Seed) ^ ClassSalt(string(s.Class)))
	// First opportunity to fire, and the refire period. Both are small
	// enough that any realistic run presents an opportunity, and the
	// period is large enough that runs are perturbed, not buried.
	i.offset = int64(h%29) + 1
	h = Splitmix(h)
	i.period = int64(h%389) + 97
	h = Splitmix(h)
	// Nonzero corruption mask; flips low and high bits so both integer
	// and reinterpreted float values change materially.
	i.mask = int64(h) | 1
	h = Splitmix(h)
	i.stallLen = int64(h%193) + 64
	h = Splitmix(h)
	i.pickSalt = h
	return i
}

// ClassSalt decorrelates schedules across classes under one seed (FNV-1a
// over the class name). Shared by every seeded injector (fault, vfs).
func ClassSalt(c string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(c); i++ {
		h ^= uint64(c[i])
		h *= 1099511628211
	}
	return h
}

// Splitmix advances the SplitMix64 generator — tiny, seedable, and
// deterministic across platforms.
func Splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Event is one injected fault, recorded for the schedule report.
type Event struct {
	// N is the injection opportunity index the fault fired at (the n-th
	// produce, pick, ... presented to the injector).
	N int64
	// Where is the thread or core the fault applied to (-1 when not
	// thread-specific).
	Where int
	// Queue is the queue affected (-1 when not queue-specific).
	Queue int
	// Detail describes the concrete mutation.
	Detail string
}

// String renders the event on one line.
func (e Event) String() string {
	s := fmt.Sprintf("@%d", e.N)
	if e.Where >= 0 {
		s += fmt.Sprintf(" t%d", e.Where)
	}
	if e.Queue >= 0 {
		s += fmt.Sprintf(" q%d", e.Queue)
	}
	return s + " " + e.Detail
}

// maxRecorded bounds the event log; injections past the cap still happen
// and still count, they just stop accumulating log entries.
const maxRecorded = 64

// Injector is one run's stateful fault schedule. It is used by a single
// executor run and is not safe for concurrent use — exactly like a
// Scheduler. The runtimes call the hook methods below at each injection
// opportunity; the injector decides deterministically whether to fire.
type Injector struct {
	spec     Spec
	offset   int64
	period   int64
	mask     int64
	stallLen int64
	pickSalt uint64

	produces int64 // produce opportunities seen
	picks    int64 // scheduler-pick opportunities seen

	stallTarget  int // frozen thread, chosen on first pick
	stallStarted bool
	stallLeft    int64

	count  int64
	events []Event
}

// Spec returns the injector's immutable schedule name.
func (i *Injector) Spec() Spec { return i.spec }

// Count returns how many faults have been injected so far.
func (i *Injector) Count() int64 {
	if i == nil {
		return 0
	}
	return i.count
}

// Events returns the recorded fault schedule (capped at maxRecorded
// entries; Count is exact).
func (i *Injector) Events() []Event { return i.events }

// Schedule renders the fault schedule deterministically, one event per
// line, for byte-identical reports across runs with the same seed.
func (i *Injector) Schedule() string {
	if i == nil || i.count == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d injected\n", i.spec, i.count)
	for _, e := range i.events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	if extra := i.count - int64(len(i.events)); extra > 0 {
		fmt.Fprintf(&b, "  ... and %d more\n", extra)
	}
	return b.String()
}

func (i *Injector) record(e Event) {
	i.count++
	if len(i.events) < maxRecorded {
		i.events = append(i.events, e)
	}
}

// fires reports whether opportunity n (1-based) is on the schedule.
func (i *Injector) fires(n int64) bool {
	return n >= i.offset && (n-i.offset)%i.period == 0
}

// QueueCap returns the effective queue capacity: halved (never below one)
// under ShrinkQueue, untouched otherwise. The first effective shrink is
// recorded once.
func (i *Injector) QueueCap(cap int) int {
	if i == nil || i.spec.Class != ShrinkQueue {
		return cap
	}
	eff := cap / 2
	if eff < 1 {
		eff = 1
	}
	if eff != cap && i.count == 0 {
		i.record(Event{N: 0, Where: -1, Queue: -1,
			Detail: fmt.Sprintf("queue capacity %d -> %d", cap, eff)})
	}
	return eff
}

// Produce intercepts one enqueue: thread (core) t is producing value v into
// queue q of a program with numQueues queues; data is true for a value
// carrying produce (false for a sync token). It returns the queue the
// value(s) actually land in, the value, and the multiplicity: 0 drops the
// value, 1 is a faithful enqueue, 2 duplicates it.
func (i *Injector) Produce(t, q int, v int64, numQueues int, data bool) (int, int64, int) {
	if i == nil {
		return q, v, 1
	}
	switch i.spec.Class {
	case DropProduce:
		i.produces++
		if i.fires(i.produces) {
			i.record(Event{N: i.produces, Where: t, Queue: q, Detail: "produce dropped"})
			return q, v, 0
		}
	case DupProduce:
		i.produces++
		if i.fires(i.produces) {
			i.record(Event{N: i.produces, Where: t, Queue: q, Detail: "produce duplicated"})
			return q, v, 2
		}
	case CorruptValue:
		if !data {
			break // corrupting an ignored sync token is undetectable
		}
		i.produces++
		if i.fires(i.produces) {
			i.record(Event{N: i.produces, Where: t, Queue: q,
				Detail: fmt.Sprintf("value %d corrupted to %d", v, v^i.mask)})
			return q, v ^ i.mask, 1
		}
	case SwapQueue:
		if numQueues < 2 {
			break // nowhere to misdirect to
		}
		i.produces++
		if i.fires(i.produces) {
			to := (q + 1 + int(Splitmix(uint64(i.produces))%uint64(numQueues-1))) % numQueues
			i.record(Event{N: i.produces, Where: t, Queue: q,
				Detail: fmt.Sprintf("produce misdirected to q%d", to)})
			return to, v, 1
		}
	}
	return q, v, 1
}

// Stall intercepts one scheduler pick (interp) or core issue slot (sim):
// it reports whether thread/core t of n total is frozen this turn. The
// frozen target and the freeze window are seed-derived; the window counts
// down per intercepted turn, so a freeze always expires even if no other
// thread can run, and a stall can never manufacture a deadlock.
func (i *Injector) Stall(t, n int) bool {
	if i == nil || i.spec.Class != StallThread || n == 0 {
		return false
	}
	if !i.stallStarted {
		i.stallTarget = int(i.pickSalt % uint64(n))
		i.stallStarted = true
		i.stallLeft = i.stallLen
	}
	if t != i.stallTarget || i.stallLeft <= 0 {
		return false
	}
	i.picks++
	if i.picks < i.offset {
		return false // freeze begins at the offset-th pick of the target
	}
	i.stallLeft--
	if i.picks == i.offset {
		i.record(Event{N: i.picks, Where: t, Queue: -1,
			Detail: fmt.Sprintf("frozen for %d turns", i.stallLen)})
	} else {
		i.count++ // every wasted turn is an injection, but log only the window
	}
	return true
}

// Misplan returns a structural clone of prog with one consume rewired
// to the wrong queue — the mis-specified-plan fault. The clone is built by
// an IR print→parse round trip, so prog itself is never touched. It
// returns ok=false when the program has no communication to corrupt. The
// mutation deterministically picks a consume and a wrong target queue from
// the seed; when the program has a single queue the consume is rewired to
// an out-of-range queue, which the runtimes reject as a typed error.
func Misplan(prog *mtcg.Program, seed int64) (*mtcg.Program, string, bool, error) {
	if prog.NumQueues == 0 {
		return nil, "", false, nil
	}
	clone := &mtcg.Program{
		Orig:       prog.Orig,
		NumQueues:  prog.NumQueues,
		NumThreads: prog.NumThreads,
		Assign:     prog.Assign,
		Comms:      append([]*mtcg.Comm(nil), prog.Comms...),
	}
	for _, f := range prog.Threads {
		cf, err := ir.Parse(f.String())
		if err != nil {
			return nil, "", false, fmt.Errorf("fault: cloning thread %s: %w", f.Name, err)
		}
		clone.Threads = append(clone.Threads, cf)
	}
	var consumes []*ir.Instr
	for _, f := range clone.Threads {
		f.Instrs(func(in *ir.Instr) {
			if in.Op == ir.Consume || in.Op == ir.ConsumeSync {
				consumes = append(consumes, in)
			}
		})
	}
	if len(consumes) == 0 {
		return nil, "", false, nil
	}
	h := Splitmix(uint64(seed) ^ ClassSalt(string(MisplacePlan)))
	victim := consumes[h%uint64(len(consumes))]
	from := victim.Queue
	to := prog.NumQueues // out of range: the single-queue case
	if prog.NumQueues > 1 {
		to = (from + 1 + int(Splitmix(h)%uint64(prog.NumQueues-1))) % prog.NumQueues
	}
	victim.Queue = to
	desc := fmt.Sprintf("consume rewired from q%d to q%d", from, to)
	return clone, desc, true, nil
}
