package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExitCodes(t *testing.T) {
	if c := ExitCode(nil); c != 0 {
		t.Errorf("nil = %d, want 0", c)
	}
	if c := ExitCode(errors.New("boom")); c != 1 {
		t.Errorf("plain error = %d, want 1", c)
	}
	if c := ExitCode(Usagef("bad flag")); c != 2 {
		t.Errorf("usage error = %d, want 2", c)
	}
	if c := ExitCode(Exit(3)); c != 3 {
		t.Errorf("Exit(3) = %d, want 3", c)
	}
	if c := ExitCode(fmt.Errorf("wrapped: %w", Usagef("inner"))); c != 2 {
		t.Errorf("wrapped usage error = %d, want 2", c)
	}
}

// failAfter writes n bytes and then fails — a truncated-write simulator.
type failAfter struct {
	n int
}

func (f *failAfter) write(w io.Writer) error {
	if f.n > 0 {
		if _, err := w.Write([]byte(strings.Repeat("x", f.n))); err != nil {
			return err
		}
	}
	return errors.New("injected write failure")
}

// TestWriteFileAtomicNeverLeavesPartialFile is the regression test for
// the os.Exit truncation bug: a failing writer must leave no file at the
// destination and no temp litter in the directory.
func TestWriteFileAtomicNeverLeavesPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	err := WriteFileAtomic(path, (&failAfter{n: 512}).write)
	if err == nil {
		t.Fatal("expected write failure")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("partial file left at %s", path)
	}
	left, _ := os.ReadDir(dir)
	if len(left) != 0 {
		t.Fatalf("temp litter left behind: %v", left)
	}
}

// TestWriteFileAtomicPreservesPreviousArtifact: a failing rewrite must
// not clobber the previous complete artifact.
func TestWriteFileAtomicPreservesPreviousArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	good := []byte(`{"ok": true}`)
	if err := WriteFileAtomic(path, func(w io.Writer) error { _, err := w.Write(good); return err }); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, (&failAfter{n: 3}).write); err == nil {
		t.Fatal("expected write failure")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(good) {
		t.Fatalf("previous artifact clobbered: %q", got)
	}
}

// TestFailingRunFlushesCompleteArtifacts emulates a command body that
// records observability data and then fails: the deferred Flush must
// still write complete, parseable JSON files.
func TestFailingRunFlushesCompleteArtifacts(t *testing.T) {
	dir := t.TempDir()
	flags := &ObsFlags{
		Trace:   filepath.Join(dir, "trace.json"),
		Metrics: filepath.Join(dir, "metrics.json"),
	}

	run := func() (err error) {
		o := flags.New()
		defer func() {
			if ferr := flags.Flush(o); ferr != nil && err == nil {
				err = ferr
			}
		}()
		// Record something, then fail mid-run the way a budget overrun or
		// bad workload would.
		o.Metrics.Counter("test.runs").Inc()
		o.Trace.Lane(1, 0).Span("phase", "pipeline", 10)
		return errors.New("simulated mid-run failure")
	}

	err := run()
	if err == nil || err.Error() != "simulated mid-run failure" {
		t.Fatalf("run error = %v", err)
	}
	for _, p := range []string{flags.Trace, flags.Metrics} {
		raw, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatalf("artifact %s missing after failing run: %v", p, rerr)
		}
		if !json.Valid(raw) {
			t.Fatalf("artifact %s is not complete JSON after failing run:\n%s", p, raw)
		}
	}
}

func TestFlushNilObsIsNoop(t *testing.T) {
	flags := &ObsFlags{}
	if err := flags.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if flags.New() != nil {
		t.Fatal("New without paths should be nil")
	}
}

func TestResolveWorkloadListsValidNames(t *testing.T) {
	if _, err := ResolveWorkload("ks"); err != nil {
		t.Fatalf("ks: %v", err)
	}
	_, err := ResolveWorkload("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	if ExitCode(err) != 2 {
		t.Errorf("exit code = %d, want 2", ExitCode(err))
	}
	for _, name := range WorkloadNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
}

func TestResolveWorkloadsSelections(t *testing.T) {
	all, err := ResolveWorkloads("")
	if err != nil || len(all) != len(WorkloadNames()) {
		t.Fatalf("empty selection: %d workloads, err=%v", len(all), err)
	}
	some, err := ResolveWorkloads(" ks , 181.mcf ")
	if err != nil || len(some) != 2 || some[0].Name != "ks" || some[1].Name != "181.mcf" {
		t.Fatalf("csv selection = %v, err=%v", some, err)
	}
	if _, err := ResolveWorkloads("ks,bogus"); ExitCode(err) != 2 {
		t.Fatalf("bad csv selection should be usage error, got %v", err)
	}
}

func TestResolvePartitionerListsValidNames(t *testing.T) {
	for _, name := range []string{"gremio", "GREMIO", "dswp", "DSWP"} {
		if _, err := ResolvePartitioner(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	_, err := ResolvePartitioner("stripe")
	if err == nil {
		t.Fatal("expected error")
	}
	if ExitCode(err) != 2 {
		t.Errorf("exit code = %d, want 2", ExitCode(err))
	}
	for _, name := range PartitionerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
}
