// Package cli carries the plumbing shared by every command in cmd/: the
// run()-returns-error main structure, atomic artifact writing, the
// -trace/-metrics observability flags, and name resolution for workloads
// and partitioners.
//
// The main structure exists to fix a real bug class: the commands used to
// call os.Exit from arbitrary error paths, which skipped deferred
// -trace/-metrics flushes and left truncated or missing JSON artifacts on
// disk. With Main, a command's body is an ordinary function — its defers
// (including the observability flush) always run before the process
// exits, and every artifact write is atomic (temp file + rename), so a
// failing run never leaves a partially-written file behind.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/workloads"
)

// exitError carries an explicit exit code through a run() error return.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string {
	if e.err == nil {
		return fmt.Sprintf("exit %d", e.code)
	}
	return e.err.Error()
}

func (e *exitError) Unwrap() error { return e.err }

// Usagef returns an error that makes Main print the message and exit
// with status 2 — the conventional code for bad invocations (unknown
// flag values, missing required flags).
func Usagef(format string, args ...any) error {
	return &exitError{code: 2, err: fmt.Errorf(format, args...)}
}

// Exit returns an error that makes Main exit with the given status
// without printing anything; commands that already reported their
// findings (failing checks, gate violations) use it instead of os.Exit
// so their defers still run.
func Exit(code int) error {
	return &exitError{code: code}
}

// ExitCode maps a run() error to the process exit status: nil is 0,
// Usagef/Exit errors carry their own code, anything else is 1.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	return 1
}

// Main runs a command body and exits with its status. Because run is an
// ordinary function, all its defers (artifact flushes, file closes) run
// before the process exits — os.Exit never truncates them.
func Main(name string, run func() error) {
	err := run()
	if err != nil {
		var ee *exitError
		if !errors.As(err, &ee) || ee.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		}
	}
	os.Exit(ExitCode(err))
}

// WriteFileAtomic writes one artifact via a temp file in the target
// directory and renames it into place. On any failure — including a
// write error halfway through — the temp file is removed and the
// destination is left untouched (a previous artifact at the same path
// survives intact). Readers therefore never observe a partially-written
// file.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	err = write(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// ObsFlags bundles the observability flags shared by experiments,
// gmtsched, and gmtprof (-trace, -metrics, -trace-limit) and the flush
// that writes their artifacts. Register the flags, build the sinks with
// New, and defer Flush inside run() — the deferred flush runs on error
// paths too, so a failing run still writes complete, parseable JSON of
// everything recorded up to the failure.
type ObsFlags struct {
	Trace      string
	Metrics    string
	TraceLimit int
	// Timeline opts into the detailed per-cycle lanes (set by the
	// command, not a flag here — gmtsched defaults it on, experiments
	// exposes -timeline).
	Timeline bool
}

// Register declares -trace, -metrics, and -trace-limit on the default
// flag set.
func (f *ObsFlags) Register() {
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON timeline to this file")
	flag.StringVar(&f.Metrics, "metrics", "", "write the metrics registry as JSON to this file")
	flag.IntVar(&f.TraceLimit, "trace-limit", 0, "trace event limit (0 = default; drops are counted, never silent)")
}

// New builds the observability sinks the flags ask for, or nil when no
// artifact was requested (recording is then free).
func (f *ObsFlags) New() *exp.Obs {
	if f.Trace == "" && f.Metrics == "" {
		return nil
	}
	o := &exp.Obs{Timeline: f.Timeline}
	if f.Trace != "" {
		o.Trace = obs.NewTrace()
		o.Trace.SetLimit(f.TraceLimit)
	}
	if f.Metrics != "" {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Flush writes the requested artifacts atomically and reports dropped
// trace events on stderr. Safe to call with a nil o (writes nothing).
// Deferred inside run(), it guarantees artifacts land complete whether
// the run succeeded or failed.
func (f *ObsFlags) Flush(o *exp.Obs) error {
	if o == nil {
		return nil
	}
	obs.RecordDrops(o.Trace, o.Metrics)
	if f.Trace != "" {
		if err := WriteFileAtomic(f.Trace, o.Trace.WriteJSON); err != nil {
			return err
		}
		if n := o.Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d events over the limit dropped (raise -trace-limit)\n", n)
		}
	}
	if f.Metrics != "" {
		if err := WriteFileAtomic(f.Metrics, o.Metrics.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// WorkloadNames returns every benchmark workload name, in figure order.
func WorkloadNames() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return names
}

// ResolveWorkload maps a -workload flag value to its workload; an
// unknown name is a usage error (exit 2) listing the valid names.
func ResolveWorkload(name string) (*workloads.Workload, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, Usagef("unknown workload %q (valid: %s)", name, strings.Join(WorkloadNames(), ", "))
	}
	return w, nil
}

// ResolveWorkloads maps a comma-separated -workloads value to workloads;
// "" and "all" select the full set. Unknown names are usage errors
// listing the valid names.
func ResolveWorkloads(sel string) ([]*workloads.Workload, error) {
	if sel == "" || sel == "all" {
		return workloads.All(), nil
	}
	var ws []*workloads.Workload
	for _, name := range strings.Split(sel, ",") {
		w, err := ResolveWorkload(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// PartitionerNames returns the flag spellings of the available
// partitioners (lower-case).
func PartitionerNames() []string {
	var names []string
	for _, p := range exp.Partitioners() {
		names = append(names, strings.ToLower(p.Name()))
	}
	return names
}

// ResolvePartitioner maps a -partitioner flag value (case-insensitive)
// to its partitioner; an unknown name is a usage error (exit 2) listing
// the valid names.
func ResolvePartitioner(name string) (partition.Partitioner, error) {
	for _, p := range exp.Partitioners() {
		if strings.EqualFold(p.Name(), name) {
			return p, nil
		}
	}
	return nil, Usagef("unknown partitioner %q (valid: %s)", name, strings.Join(PartitionerNames(), ", "))
}
