package gmt_test

import (
	"testing"

	gmt "repro"
	"repro/internal/workloads"
)

// TestStaticProfileParallelization exercises the profile-free path on every
// benchmark workload: the generated code must still be correct, and COCO
// must still never increase communication relative to plain MTCG under the
// same (statically estimated) profile.
func TestStaticProfileParallelization(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			in := w.Train()
			want, _, err := gmt.ExecuteSingle(w.F, in.Args, append([]int64(nil), in.Mem...))
			if err != nil {
				t.Fatalf("ExecuteSingle: %v", err)
			}
			var comm [2]int64
			for i, useCoco := range []bool{false, true} {
				res, err := gmt.Parallelize(w.F, w.Objects, gmt.Config{
					Scheduler:     gmt.SchedulerGREMIO,
					COCO:          useCoco,
					StaticProfile: true,
				})
				if err != nil {
					t.Fatalf("coco=%v: Parallelize: %v", useCoco, err)
				}
				out, err := gmt.Execute(res, in.Args, append([]int64(nil), in.Mem...))
				if err != nil {
					t.Fatalf("coco=%v: Execute: %v", useCoco, err)
				}
				for j := range want {
					if out.LiveOuts[j] != want[j] {
						t.Errorf("coco=%v: live-out %d = %d, want %d",
							useCoco, j, out.LiveOuts[j], want[j])
					}
				}
				comm[i] = out.Stats.Comm()
			}
			if comm[1] > comm[0] {
				t.Errorf("COCO increased communication under static profile: %d -> %d",
					comm[0], comm[1])
			}
		})
	}
}

// TestStaticProfileCloseToMeasured compares COCO's outcome under static and
// measured profiles on one benchmark: static estimation should not be
// catastrophically worse (the paper cites [28]: static estimates are
// "also very accurate").
func TestStaticProfileCloseToMeasured(t *testing.T) {
	w, err := workloads.ByName("ks")
	if err != nil {
		t.Fatal(err)
	}
	in := w.Train()
	measure := func(static bool) int64 {
		cfg := gmt.Config{Scheduler: gmt.SchedulerGREMIO, COCO: true}
		if static {
			cfg.StaticProfile = true
		} else {
			cfg.Profile = gmt.ProfileInput{Args: in.Args, Mem: append([]int64(nil), in.Mem...)}
		}
		res, err := gmt.Parallelize(w.F, w.Objects, cfg)
		if err != nil {
			t.Fatalf("Parallelize(static=%v): %v", static, err)
		}
		ref := w.Ref()
		out, err := gmt.Execute(res, ref.Args, ref.Mem)
		if err != nil {
			t.Fatalf("Execute(static=%v): %v", static, err)
		}
		return out.Stats.Comm()
	}
	measured := measure(false)
	static := measure(true)
	if measured == 0 {
		t.Skip("no communication under measured profile")
	}
	ratio := float64(static) / float64(measured)
	if ratio > 3.0 {
		t.Errorf("static-profile communication %d is %.1fx the measured-profile %d",
			static, ratio, measured)
	}
	t.Logf("communication: measured-profile=%d static-profile=%d (%.2fx)", measured, static, ratio)
}

// TestMultiThreadParallelization checks 3- and 4-thread extraction end to
// end (the paper evaluates 2 threads but expects COCO's benefit to grow
// with more).
func TestMultiThreadParallelization(t *testing.T) {
	for _, name := range []string{"ks", "183.equake"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := w.Train()
		want, _, err := gmt.ExecuteSingle(w.F, in.Args, append([]int64(nil), in.Mem...))
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{3, 4} {
			res, err := gmt.Parallelize(w.F, w.Objects, gmt.Config{
				Scheduler: gmt.SchedulerGREMIO,
				COCO:      true,
				Threads:   threads,
				Profile:   gmt.ProfileInput{Args: in.Args, Mem: append([]int64(nil), in.Mem...)},
			})
			if err != nil {
				t.Fatalf("%s threads=%d: %v", name, threads, err)
			}
			if len(res.Threads) != threads {
				t.Fatalf("%s: got %d thread functions, want %d", name, len(res.Threads), threads)
			}
			out, err := gmt.Execute(res, in.Args, append([]int64(nil), in.Mem...))
			if err != nil {
				t.Fatalf("%s threads=%d: Execute: %v", name, threads, err)
			}
			for j := range want {
				if out.LiveOuts[j] != want[j] {
					t.Errorf("%s threads=%d: live-out %d = %d, want %d",
						name, threads, j, out.LiveOuts[j], want[j])
				}
			}
		}
	}
}
