package gmt

import "repro/internal/ir"

// Op is an IR opcode.
type Op = ir.Op

// Re-exported opcodes for clients that build regions with Builder.Op2To and
// friends (destructive updates of loop-carried registers).
const (
	OpAdd    = ir.Add
	OpSub    = ir.Sub
	OpMul    = ir.Mul
	OpDiv    = ir.Div
	OpRem    = ir.Rem
	OpAnd    = ir.And
	OpOr     = ir.Or
	OpXor    = ir.Xor
	OpShl    = ir.Shl
	OpShr    = ir.Shr
	OpMov    = ir.Mov
	OpAbs    = ir.Abs
	OpCmpEQ  = ir.CmpEQ
	OpCmpNE  = ir.CmpNE
	OpCmpLT  = ir.CmpLT
	OpCmpLE  = ir.CmpLE
	OpCmpGT  = ir.CmpGT
	OpCmpGE  = ir.CmpGE
	OpFAdd   = ir.FAdd
	OpFSub   = ir.FSub
	OpFMul   = ir.FMul
	OpFDiv   = ir.FDiv
	OpFSqrt  = ir.FSqrt
	OpFCmpLT = ir.FCmpLT
	OpFCmpGT = ir.FCmpGT
	OpLoad   = ir.Load
	OpStore  = ir.Store
)
