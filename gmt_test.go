package gmt_test

import (
	"context"
	"errors"
	"testing"

	gmt "repro"
	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/workloads"
)

// buildSumKernel makes a small region: sum of an array with a conditional
// (only positive elements), exercising hammocks and a loop.
func buildSumKernel() (*gmt.Function, []gmt.MemObject, gmt.MemObject) {
	b := gmt.NewBuilder("sumpos")
	arr := b.Array("arr", 64)
	n := b.Param()
	loop := b.Block("loop")
	add := b.Block("add")
	latch := b.Block("latch")
	exit := b.Block("exit")
	i := b.F.NewReg()
	sum := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(sum, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	v := b.Load(b.Add(b.AddrOf(arr), i), 0)
	b.Br(b.CmpGT(v, b.Const(0)), add, latch)
	b.SetBlock(add)
	b.Op2To(sum, ir.Add, sum, v)
	b.Jump(latch)
	b.SetBlock(latch)
	b.Op2To(i, ir.Add, i, b.Const(1))
	b.Br(b.CmpLT(i, n), loop, exit)
	b.SetBlock(exit)
	b.Ret(sum)
	b.F.SplitCriticalEdges()
	return b.F, b.Objects, arr
}

func sumInput(arr gmt.MemObject) ([]int64, []int64) {
	mem := make([]int64, 64)
	for k := range mem {
		mem[k] = int64(k%7) - 3
	}
	return []int64{64}, mem
}

func TestParallelizeFacadeEndToEnd(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)

	want, _, err := gmt.ExecuteSingle(f, args, append([]int64(nil), mem...))
	if err != nil {
		t.Fatalf("ExecuteSingle: %v", err)
	}

	for _, sched := range []gmt.Scheduler{gmt.SchedulerDSWP, gmt.SchedulerGREMIO} {
		for _, useCoco := range []bool{false, true} {
			res, err := gmt.Parallelize(f, objs, gmt.Config{
				Scheduler: sched,
				COCO:      useCoco,
				Profile:   gmt.ProfileInput{Args: args, Mem: append([]int64(nil), mem...)},
			})
			if err != nil {
				t.Fatalf("%s coco=%v: Parallelize: %v", sched, useCoco, err)
			}
			if len(res.Threads) != 2 {
				t.Fatalf("%s: %d threads, want 2", sched, len(res.Threads))
			}
			out, err := gmt.Execute(res, args, append([]int64(nil), mem...))
			if err != nil {
				t.Fatalf("%s coco=%v: Execute: %v", sched, useCoco, err)
			}
			if len(out.LiveOuts) != 1 || out.LiveOuts[0] != want[0] {
				t.Errorf("%s coco=%v: live-out %v, want %v", sched, useCoco, out.LiveOuts, want)
			}
		}
	}
}

func TestParallelizeRejectsUnknownScheduler(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	_, err := gmt.Parallelize(f, objs, gmt.Config{
		Scheduler: "nope",
		Profile:   gmt.ProfileInput{Args: args, Mem: mem},
	})
	if err == nil {
		t.Error("unknown scheduler accepted")
	}
}

// roundRobin is a deliberately bad partitioner used to prove that MTCG
// generates correct code for any partition (the paper's central claim for
// MTCG) and that custom partitioners plug into the facade.
type roundRobin struct{}

func (roundRobin) Name() string { return "round-robin" }

func (roundRobin) Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, n int) (map[*ir.Instr]int, error) {
	assign := map[*ir.Instr]int{}
	i := 0
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		assign[in] = i % n
		i++
	})
	return assign, nil
}

func TestCustomPartitionerAnyPartitionIsCorrect(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	want, _, err := gmt.ExecuteSingle(f, args, append([]int64(nil), mem...))
	if err != nil {
		t.Fatalf("ExecuteSingle: %v", err)
	}
	for _, useCoco := range []bool{false, true} {
		res, err := gmt.Parallelize(f, objs, gmt.Config{
			Custom:  roundRobin{},
			COCO:    useCoco,
			Profile: gmt.ProfileInput{Args: args, Mem: append([]int64(nil), mem...)},
		})
		if err != nil {
			t.Fatalf("coco=%v: Parallelize: %v", useCoco, err)
		}
		out, err := gmt.Execute(res, args, append([]int64(nil), mem...))
		if err != nil {
			t.Fatalf("coco=%v: Execute: %v", useCoco, err)
		}
		if out.LiveOuts[0] != want[0] {
			t.Errorf("coco=%v: live-out %d, want %d", useCoco, out.LiveOuts[0], want[0])
		}
	}
}

func TestSimulateSpeedupPlausible(t *testing.T) {
	w, err := workloads.ByName("435.gromacs")
	if err != nil {
		t.Fatal(err)
	}
	train := w.Train()
	res, err := gmt.Parallelize(w.F, w.Objects, gmt.Config{
		Scheduler: gmt.SchedulerDSWP,
		COCO:      true,
		Profile:   gmt.ProfileInput{Args: train.Args, Mem: train.Mem},
	})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	cfg := gmt.DefaultMachine()
	ref := w.Ref()
	st, err := gmt.SimulateSingle(w.F, cfg, ref.Args, append([]int64(nil), ref.Mem...))
	if err != nil {
		t.Fatalf("SimulateSingle: %v", err)
	}
	mt, err := gmt.Simulate(res, cfg, ref.Args, append([]int64(nil), ref.Mem...))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	speedup := float64(st) / float64(mt)
	if speedup < 0.5 || speedup > 2.5 {
		t.Errorf("implausible dual-core speedup %.2fx (ST %d cycles, MT %d)", speedup, st, mt)
	}
}

func TestKeepPerDepQueuesOption(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	base := gmt.Config{
		Scheduler: gmt.SchedulerGREMIO,
		COCO:      true,
		Profile:   gmt.ProfileInput{Args: args, Mem: append([]int64(nil), mem...)},
	}
	merged, err := gmt.Parallelize(f, objs, base)
	if err != nil {
		t.Fatal(err)
	}
	raw := base
	raw.Profile = gmt.ProfileInput{Args: args, Mem: append([]int64(nil), mem...)}
	raw.KeepPerDepQueues = true
	perDep, err := gmt.Parallelize(f, objs, raw)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumQueues > perDep.NumQueues {
		t.Errorf("allocation increased queues: %d > %d", merged.NumQueues, perDep.NumQueues)
	}
	if perDep.NumQueues != perDep.CommCount() {
		t.Errorf("per-dependence queues: %d queues for %d comms",
			perDep.NumQueues, perDep.CommCount())
	}
	// Both still execute correctly.
	for _, res := range []*gmt.Result{merged, perDep} {
		out, err := gmt.Execute(res, args, append([]int64(nil), mem...))
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := gmt.ExecuteSingle(f, args, append([]int64(nil), mem...))
		if out.LiveOuts[0] != want[0] {
			t.Errorf("result %d, want %d", out.LiveOuts[0], want[0])
		}
	}
}

func TestResultAccessors(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	res, err := gmt.Parallelize(f, objs, gmt.Config{
		Profile: gmt.ProfileInput{Args: args, Mem: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Original() != f {
		t.Error("Original() does not return the input region")
	}
	if len(res.Objects()) != len(objs) {
		t.Error("Objects() wrong length")
	}
	if res.Profile == nil {
		t.Error("Profile missing")
	}
}

// TestParallelizeAllMatchesSerial fans several independent regions out
// over the worker pool and checks each result behaves identically to a
// serial Parallelize of the same region.
func TestParallelizeAllMatchesSerial(t *testing.T) {
	var jobs []gmt.Job
	var inputs [][2][]int64
	for i := 0; i < 6; i++ {
		f, objs, arr := buildSumKernel()
		args, mem := sumInput(arr)
		sched := gmt.SchedulerDSWP
		if i%2 == 1 {
			sched = gmt.SchedulerGREMIO
		}
		jobs = append(jobs, gmt.Job{F: f, Objects: objs, Config: gmt.Config{
			Scheduler: sched,
			COCO:      true,
			Profile:   gmt.ProfileInput{Args: args, Mem: append([]int64(nil), mem...)},
		}})
		inputs = append(inputs, [2][]int64{args, mem})
	}

	results, err := gmt.ParallelizeAll(context.Background(), 4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		args, mem := inputs[i][0], inputs[i][1]
		want, _, err := gmt.ExecuteSingle(jobs[i].F, args, append([]int64(nil), mem...))
		if err != nil {
			t.Fatal(err)
		}
		out, err := gmt.Execute(res, args, append([]int64(nil), mem...))
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if out.LiveOuts[0] != want[0] {
			t.Errorf("region %d: result %d, want %d", i, out.LiveOuts[0], want[0])
		}
	}
}

// TestParallelizeAllCancelled checks a cancelled context aborts the fan-out.
func TestParallelizeAllCancelled(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	jobs := []gmt.Job{{F: f, Objects: objs, Config: gmt.Config{
		Profile: gmt.ProfileInput{Args: args, Mem: mem},
	}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gmt.ParallelizeAll(ctx, 2, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConfigBudgetEnforced checks the Budget option reaches the profiler.
func TestConfigBudgetEnforced(t *testing.T) {
	f, objs, arr := buildSumKernel()
	args, mem := sumInput(arr)
	_, err := gmt.Parallelize(f, objs, gmt.Config{
		Profile: gmt.ProfileInput{Args: args, Mem: mem},
		Budget:  gmt.Budget{ProfileSteps: 5},
	})
	if err == nil {
		t.Fatal("want step-limit error under a 5-step budget")
	}
}
