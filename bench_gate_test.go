// Benchmark-regression gate: recompute every BenchmarkSuite benchmark's
// deterministic work metrics (no timing loop) and diff them against the
// committed BENCH_pipeline.json. Wall-clock ns/op is noise and is ignored;
// the work metrics must not drift between commits unless the change
// intends them to — in which case regenerate the baseline:
//
//	go test -run '^$' -bench BenchmarkSuite -benchtime 1x .
//
// and commit the rewritten file alongside the change that explains it.
package gmt_test

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// suiteFresh recomputes the deterministic metrics of each BenchmarkSuite
// benchmark. It must stay in step with the metric maps the benchmarks in
// bench_pipeline_test.go record: a metric added there joins the baseline
// on the next regeneration and must be mirrored here.
func suiteFresh(t *testing.T) []benchsuite.Result {
	t.Helper()
	metrics := func(name string, m map[string]float64) benchsuite.Result {
		return benchsuite.Result{Name: name, Metrics: m}
	}
	byName := func(name string) *workloads.Workload {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	build := func(name string, part partition.Partitioner) *exp.Pipeline {
		p, err := exp.Build(byName(name), part, coco.DefaultOptions())
		if err != nil {
			t.Fatalf("%s/%s: %v", name, part.Name(), err)
		}
		return p
	}
	var rs []benchsuite.Result

	ks := byName("ks")
	g := pdg.Build(ks.F, ks.Objects)
	rs = append(rs, metrics("BenchmarkSuitePDGBuild", map[string]float64{
		"arcs":  float64(g.NumArcs()),
		"nodes": float64(ks.F.NumInstrs()),
	}))

	{
		fg, s, sink := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		rs = append(rs, metrics("BenchmarkSuiteMinCutDinic",
			map[string]float64{"max-flow": float64(fg.MaxFlowDinic(s, sink))}))
	}
	{
		fg, s, sink := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		rs = append(rs, metrics("BenchmarkSuiteMinCutEdmondsKarp",
			map[string]float64{"max-flow": float64(fg.MaxFlow(s, sink))}))
	}
	{
		fg, s, sink := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		rs = append(rs, metrics("BenchmarkSuiteMinCutPushRelabel",
			map[string]float64{"max-flow": float64(fg.MaxFlowPushRelabel(s, sink))}))
	}

	pipeMetrics := func(p *exp.Pipeline) map[string]float64 {
		return map[string]float64{
			"coco-instrs":  suiteProgInstrs(p, true),
			"coco-queues":  float64(p.Coco.NumQueues),
			"naive-instrs": suiteProgInstrs(p, false),
			"naive-queues": float64(p.Naive.NumQueues),
		}
	}
	ksGremio := build("ks", partition.GREMIO{})
	ksDswp := build("ks", partition.DSWP{})
	rs = append(rs,
		metrics("BenchmarkSuitePipelineKSGremio", pipeMetrics(ksGremio)),
		metrics("BenchmarkSuitePipelineKSDSWP", pipeMetrics(ksDswp)),
		metrics("BenchmarkSuitePipelineMpeg2encGremio", pipeMetrics(build("mpeg2enc", partition.GREMIO{}))),
	)

	in := ks.Ref()
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: ksDswp.Coco.Threads, NumQueues: ksDswp.Coco.NumQueues, QueueCap: ksDswp.QueueCap,
		Assign: ksDswp.Assign, Args: in.Args, Mem: in.Mem,
		MaxSteps: budget.Experiments().MeasureSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs = append(rs, metrics("BenchmarkSuiteMTInterpKS", map[string]float64{
		"produce": float64(mt.Stats.Produce),
		"steps":   float64(mt.Steps),
	}))

	cycles, err := ksGremio.MeasureCycles(ksGremio.Machine(sim.DefaultConfig()), ksGremio.Coco)
	if err != nil {
		t.Fatal(err)
	}
	rs = append(rs, metrics("BenchmarkSuiteSimKS", map[string]float64{"cycles": float64(cycles)}))
	return rs
}

func TestBenchSuiteBaseline(t *testing.T) {
	baseline, err := benchsuite.ReadFile("BENCH_pipeline.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_pipeline.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	fresh := suiteFresh(t)
	for _, d := range benchsuite.Diff(baseline, fresh) {
		t.Errorf("bench baseline drift: %s", d)
	}
}
