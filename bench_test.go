// Benchmarks regenerating the paper's tables and figures. Each benchmark
// reports the figure's headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the evaluation of Section 4:
//
//	BenchmarkFig1Breakdown     — % communication instructions under MTCG
//	BenchmarkFig7Communication — COCO's relative dynamic communication
//	BenchmarkFig8Speedup       — speedups over single-threaded execution
//	BenchmarkFig6aConfig       — sanity-checks the machine table
//	BenchmarkMinCut*           — the Section 3.1.1 min-cut engines
//	BenchmarkAblation*         — design-choice ablations (DESIGN.md)
package gmt_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mincut"
	"repro/internal/mtcg"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchWorkloads returns a representative subset for per-iteration
// benchmarks (the full set runs via the experiments command).
func benchWorkloads(b *testing.B) []*workloads.Workload {
	b.Helper()
	var ws []*workloads.Workload
	for _, name := range []string{"ks", "mpeg2enc", "183.equake"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func BenchmarkFig1Breakdown(b *testing.B) {
	ws := benchWorkloads(b)
	var rows []exp.CommRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.CommExperiment(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	var gremio, dswp float64
	var ng, nd int
	for _, r := range rows {
		if r.Partitioner == "GREMIO" {
			gremio += r.CommPct()
			ng++
		} else {
			dswp += r.CommPct()
			nd++
		}
	}
	b.ReportMetric(gremio/float64(ng), "gremio-comm-%")
	b.ReportMetric(dswp/float64(nd), "dswp-comm-%")
}

func BenchmarkFig7Communication(b *testing.B) {
	ws := benchWorkloads(b)
	var rows []exp.CommRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.CommExperiment(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	var gremio, dswp []float64
	for _, r := range rows {
		if r.Partitioner == "GREMIO" {
			gremio = append(gremio, r.RelativeComm())
		} else {
			dswp = append(dswp, r.RelativeComm())
		}
	}
	b.ReportMetric(exp.ArithMean(gremio), "gremio-rel-comm-%")
	b.ReportMetric(exp.ArithMean(dswp), "dswp-rel-comm-%")
}

func BenchmarkFig8Speedup(b *testing.B) {
	ws := benchWorkloads(b)
	cfg := sim.DefaultConfig()
	var rows []exp.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.SpeedupExperiment(cfg, ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	var naive, opt []float64
	for _, r := range rows {
		naive = append(naive, r.NaiveSpeedup())
		opt = append(opt, r.CocoSpeedup())
	}
	b.ReportMetric(exp.GeoMean(naive), "mtcg-speedup-x")
	b.ReportMetric(exp.GeoMean(opt), "mtcg+coco-speedup-x")
}

func BenchmarkFig6aConfig(b *testing.B) {
	var cfg sim.Config
	for i := 0; i < b.N; i++ {
		cfg = sim.DefaultConfig()
	}
	b.ReportMetric(float64(cfg.IssueWidth), "issue-width")
	b.ReportMetric(float64(cfg.MemLat), "mem-latency-cycles")
}

// cfgShapedGraph builds a CFG-shaped flow network: a chain of diamonds, the
// structure register min-cut sees in practice.
func cfgShapedGraph(diamonds int, rng *rand.Rand) (*mincut.Graph, int, int) {
	n := diamonds*3 + 2
	g := mincut.New(n)
	prev := 0
	node := 1
	for d := 0; d < diamonds; d++ {
		a, bn, c := node, node+1, node+2
		node += 3
		w := int64(1 + rng.Intn(100))
		g.AddArc(prev, a, w+int64(rng.Intn(20)))
		g.AddArc(a, bn, w/2+1)
		g.AddArc(a, c, w/2+1)
		g.AddArc(bn, c, w+1)
		prev = c
	}
	g.AddArc(prev, n-1, int64(1+rng.Intn(100)))
	return g, 0, n - 1
}

func BenchmarkMinCutEdmondsKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		g, s, t := cfgShapedGraph(60, rng)
		g.MaxFlow(s, t)
		g.MinCutSourceSide(s)
	}
}

func BenchmarkMinCutDinic(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		g, s, t := cfgShapedGraph(60, rng)
		g.MaxFlowDinic(s, t)
		g.MinCutSourceSide(s)
	}
}

// ablationComm measures relative dynamic communication for a COCO variant.
func ablationComm(b *testing.B, name string, opts coco.Options) {
	b.Helper()
	ws := benchWorkloads(b)
	var rel []float64
	for i := 0; i < b.N; i++ {
		rel = rel[:0]
		for _, part := range exp.Partitioners() {
			for _, w := range ws {
				p, err := exp.Build(w, part, opts)
				if err != nil {
					b.Fatal(err)
				}
				naive, err := p.MeasureComm(p.Naive)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := p.MeasureComm(p.Coco)
				if err != nil {
					b.Fatal(err)
				}
				if naive.Comm() > 0 {
					rel = append(rel, 100*float64(opt.Comm())/float64(naive.Comm()))
				}
			}
		}
	}
	b.ReportMetric(exp.ArithMean(rel), name)
}

func BenchmarkAblationFullCOCO(b *testing.B) {
	ablationComm(b, "rel-comm-%", coco.DefaultOptions())
}

func BenchmarkAblationNoControlPenalties(b *testing.B) {
	opts := coco.DefaultOptions()
	opts.ControlPenalties = false
	ablationComm(b, "rel-comm-%", opts)
}

func BenchmarkAblationNoMemSharing(b *testing.B) {
	opts := coco.DefaultOptions()
	opts.ShareMemSync = false
	ablationComm(b, "rel-comm-%", opts)
}

func BenchmarkAblationDinicFlow(b *testing.B) {
	opts := coco.DefaultOptions()
	opts.Dinic = true
	ablationComm(b, "rel-comm-%", opts)
}

func BenchmarkAblationEdmondsKarpFlow(b *testing.B) {
	opts := coco.DefaultOptions()
	opts.EdmondsKarp = true
	ablationComm(b, "rel-comm-%", opts)
}

func BenchmarkAblationQueueAllocation(b *testing.B) {
	w, err := workloads.ByName("ks")
	if err != nil {
		b.Fatal(err)
	}
	var before, after int
	for i := 0; i < b.N; i++ {
		p, err := exp.Build(w, partition.GREMIO{}, coco.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Rebuild an unallocated program to measure the difference.
		g := pdg.Build(w.F, w.Objects)
		plan, err := coco.Plan(w.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		prog, err := mtcg.Generate(plan)
		if err != nil {
			b.Fatal(err)
		}
		alloc := queue.Allocate(prog)
		before, after = alloc.Before, alloc.After
	}
	b.ReportMetric(float64(before), "queues-before")
	b.ReportMetric(float64(after), "queues-after")
}

// BenchmarkCompilePipeline measures end-to-end compilation cost (the
// Section 4 claim that Edmonds–Karp "performed well enough not to
// significantly increase compilation time").
func BenchmarkCompilePipeline(b *testing.B) {
	for _, sched := range []partition.Partitioner{partition.DSWP{}, partition.GREMIO{}} {
		for _, withCoco := range []bool{false, true} {
			name := fmt.Sprintf("%s/coco=%v", sched.Name(), withCoco)
			b.Run(name, func(b *testing.B) {
				w, err := workloads.ByName("mpeg2enc")
				if err != nil {
					b.Fatal(err)
				}
				opts := coco.DefaultOptions()
				for i := 0; i < b.N; i++ {
					if withCoco {
						if _, err := exp.Build(w, sched, opts); err != nil {
							b.Fatal(err)
						}
					} else {
						in := w.Train()
						g := pdg.Build(w.F, w.Objects)
						prof, err := profileOnce(w, in)
						if err != nil {
							b.Fatal(err)
						}
						assign, err := sched.Partition(w.F, g, prof, 2)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := mtcg.Generate(mtcg.NaivePlan(w.F, g, assign, 2)); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// profileOnce collects a training profile for a workload.
func profileOnce(w *workloads.Workload, in workloads.Input) (*ir.Profile, error) {
	res, err := interp.Run(w.F, in.Args, in.Mem, budget.Experiments().ProfileSteps)
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

// Machine-sensitivity extensions: the paper fixes the SA at 32-entry queues
// with 1-cycle access; these benchmarks sweep both to show how sensitive
// the MTCG+COCO speedups are to the communication substrate.

func sensitivityCycles(b *testing.B, mutate func(*sim.Config)) float64 {
	b.Helper()
	w, err := workloads.ByName("ks")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	mutate(&cfg)
	var speedup float64
	for i := 0; i < b.N; i++ {
		p, err := exp.Build(w, partition.GREMIO{}, coco.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		st, err := exp.SingleThreadedCycles(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		mt, err := p.MeasureCycles(cfg, p.Coco)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(st) / float64(mt)
	}
	return speedup
}

func BenchmarkSensitivityQueueCap(b *testing.B) {
	for _, cap := range []int{1, 4, 32, 128} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			s := sensitivityCycles(b, func(c *sim.Config) { c.QueueCap = cap })
			b.ReportMetric(s, "speedup-x")
		})
	}
}

func BenchmarkSensitivitySALatency(b *testing.B) {
	for _, lat := range []int{1, 4, 16} {
		lat := lat
		b.Run(fmt.Sprintf("lat=%d", lat), func(b *testing.B) {
			s := sensitivityCycles(b, func(c *sim.Config) { c.SALatency = lat })
			b.ReportMetric(s, "speedup-x")
		})
	}
}

func BenchmarkSensitivitySAPorts(b *testing.B) {
	for _, ports := range []int{1, 2, 4} {
		ports := ports
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			s := sensitivityCycles(b, func(c *sim.Config) { c.SAPorts = ports })
			b.ReportMetric(s, "speedup-x")
		})
	}
}

// BenchmarkExperimentEngine runs the full figure matrix (communication and
// speedup, all workloads, both partitioners) through the concurrent
// engine at several worker-pool sizes. On a 4-core machine jobs=4 is
// expected to be >=2x faster wall-clock than jobs=1; per-workload
// profiling and PDG construction are memoized, so every variant also does
// 4x less analysis work than the pre-engine serial harness.
func BenchmarkExperimentEngine(b *testing.B) {
	ws := workloads.All()
	cfg := sim.DefaultConfig()
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := exp.NewEngine(exp.EngineOptions{Jobs: jobs})
				if _, err := eng.CommExperiment(context.Background(), ws); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.SpeedupExperiment(context.Background(), cfg, ws); err != nil {
					b.Fatal(err)
				}
				stats := eng.Stats()
				if stats.ProfileRuns != int64(len(ws)) || stats.PDGBuilds != int64(len(ws)) {
					b.Fatalf("memoization broken: %+v for %d workloads", stats, len(ws))
				}
			}
		})
	}
}
