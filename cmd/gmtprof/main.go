// Command gmtprof is the cycle-attribution profiler CLI: it re-simulates a
// workload's multi-threaded schedule with attribution and dependence-event
// collection enabled and reports where the cycles went — the exact
// per-core cause-bucket decomposition, per-queue stall blame, and the
// dynamic critical path's top instructions and queues. With -against it
// profiles a second configuration and explains the cycle delta between the
// two (the per-bucket decomposition is exact, not sampled).
//
// Usage:
//
//	gmtprof -workload ks -partitioner dswp [-against gremio|naive|none]
//	        [-top 10] [-trace out.json] [-metrics out.json] [-trace-limit N]
//
// -against takes the other partitioner's name (compare schedulers on the
// COCO program), "naive" (compare COCO against plain MTCG under the same
// partitioner), or "none". All measurements are simulator cycles — never
// wall-clock — and the report is byte-deterministic for a given workload,
// machine, and flags. -trace writes a Chrome trace-event JSON timeline
// whose produce→consume flow arrows (load it in Perfetto) follow each
// value through the synchronization array.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
)

// subjectPid places the profiled run's lanes in the trace, away from the
// pid ranges the experiment pipelines use.
const subjectPid = 4000

func main() { cli.Main("gmtprof", run) }

func run() (err error) {
	name := flag.String("workload", "ks", "workload name (see cmd/experiments -fig 6b)")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	against := flag.String("against", "none",
		"baseline to explain the subject against: the other partitioner's name, naive, or none")
	top := flag.Int("top", 10, "critical-path list length (0 = all)")
	var of cli.ObsFlags
	of.Register()
	flag.Parse()

	w, err := cli.ResolveWorkload(*name)
	if err != nil {
		return err
	}
	p, err := cli.ResolvePartitioner(*part)
	if err != nil {
		return err
	}

	o := of.New()
	defer func() {
		if ferr := of.Flush(o); ferr != nil && err == nil {
			err = ferr
		}
	}()
	var tr *obs.Trace
	if o != nil {
		tr = o.Trace
	}

	ctx := context.Background()
	eng := exp.NewEngine(exp.EngineOptions{Jobs: 1, Obs: o})
	cfg := sim.DefaultConfig()

	subject, err := eng.Profile(ctx, cfg, w, p, true, tr, subjectPid)
	if err != nil {
		return err
	}
	if err := subject.Render(os.Stdout, *top); err != nil {
		return err
	}

	// The baseline run is profiled without flows so the trace stays the
	// subject's; attribution and the critical path are still exact.
	var baseline *profile.Report
	switch *against {
	case "none", "":
	case "naive":
		baseline, err = eng.Profile(ctx, cfg, w, p, false, nil, 0)
		if err != nil {
			return err
		}
	default:
		bp, perr := cli.ResolvePartitioner(*against)
		if perr != nil {
			return perr
		}
		if bp.Name() == p.Name() {
			return cli.Usagef("-against %s is the subject's own partitioner; use naive or the other one", *against)
		}
		baseline, err = eng.Profile(ctx, cfg, w, bp, true, nil, 0)
		if err != nil {
			return err
		}
	}
	if baseline != nil {
		fmt.Println()
		if err := profile.Explain(baseline, subject).Render(os.Stdout, *top); err != nil {
			return err
		}
	}
	return nil
}
