// Command gmtprof is the cycle-attribution profiler CLI: it re-simulates a
// workload's multi-threaded schedule with attribution and dependence-event
// collection enabled and reports where the cycles went — the exact
// per-core cause-bucket decomposition, per-queue stall blame, and the
// dynamic critical path's top instructions and queues. With -against it
// profiles a second configuration and explains the cycle delta between the
// two (the per-bucket decomposition is exact, not sampled).
//
// Usage:
//
//	gmtprof -workload ks -partitioner dswp [-against gremio|naive|none]
//	        [-top 10] [-trace out.json] [-metrics out.json] [-trace-limit N]
//
// -against takes the other partitioner's name (compare schedulers on the
// COCO program), "naive" (compare COCO against plain MTCG under the same
// partitioner), or "none". All measurements are simulator cycles — never
// wall-clock — and the report is byte-deterministic for a given workload,
// machine, and flags. -trace writes a Chrome trace-event JSON timeline
// whose produce→consume flow arrows (load it in Perfetto) follow each
// value through the synchronization array.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// subjectPid places the profiled run's lanes in the trace, away from the
// pid ranges the experiment pipelines use.
const subjectPid = 4000

func main() {
	name := flag.String("workload", "ks", "workload name (see cmd/experiments -fig 6b)")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	against := flag.String("against", "none",
		"baseline to explain the subject against: the other partitioner's name, naive, or none")
	top := flag.Int("top", 10, "critical-path list length (0 = all)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	metricsPath := flag.String("metrics", "", "write the metrics registry as JSON to this file")
	traceLimit := flag.Int("trace-limit", 0, "trace event limit (0 = default; drops are counted, never silent)")
	flag.Parse()

	w, err := workloads.ByName(*name)
	die(err)
	p, err := partitionerByName(*part)
	die(err)

	var o *exp.Obs
	var tr *obs.Trace
	if *tracePath != "" || *metricsPath != "" {
		o = &exp.Obs{}
		if *tracePath != "" {
			tr = obs.NewTrace()
			tr.SetLimit(*traceLimit)
			o.Trace = tr
		}
		if *metricsPath != "" {
			o.Metrics = obs.NewRegistry()
		}
	}

	ctx := context.Background()
	eng := exp.NewEngine(exp.EngineOptions{Jobs: 1, Obs: o})
	cfg := sim.DefaultConfig()

	subject, err := eng.Profile(ctx, cfg, w, p, true, tr, subjectPid)
	die(err)
	die(subject.Render(os.Stdout, *top))

	// The baseline run is profiled without flows so the trace stays the
	// subject's; attribution and the critical path are still exact.
	var baseline *profile.Report
	switch *against {
	case "none", "":
	case "naive":
		baseline, err = eng.Profile(ctx, cfg, w, p, false, nil, 0)
		die(err)
	default:
		bp, perr := partitionerByName(*against)
		die(perr)
		if bp.Name() == p.Name() {
			die(fmt.Errorf("-against %s is the subject's own partitioner; use naive or the other one", *against))
		}
		baseline, err = eng.Profile(ctx, cfg, w, bp, true, nil, 0)
		die(err)
	}
	if baseline != nil {
		fmt.Println()
		die(profile.Explain(baseline, subject).Render(os.Stdout, *top))
	}

	if o != nil {
		obs.RecordDrops(o.Trace, o.Metrics)
		if *tracePath != "" {
			writeObs(*tracePath, o.Trace.WriteJSON)
			if n := o.Trace.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "trace: %d events over the limit dropped (raise -trace-limit)\n", n)
			}
		}
		if *metricsPath != "" {
			writeObs(*metricsPath, o.Metrics.WriteJSON)
		}
	}
}

func partitionerByName(name string) (partition.Partitioner, error) {
	switch name {
	case "gremio":
		return partition.GREMIO{}, nil
	case "dswp":
		return partition.DSWP{}, nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", name)
}

// writeObs writes one observability artifact, dying on any error.
func writeObs(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		die(fmt.Errorf("writing %s: %w", path, err))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmtprof:", err)
		os.Exit(1)
	}
}
