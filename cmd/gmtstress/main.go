// Command gmtstress runs the corpus-scale differential torture sweep: a
// seeded corpus of generated programs (spanning size, CFG shape, aliasing
// density, live-out count, and queue-pressure axes), each cell pinned to
// one configuration point of the partitioner × schedule × queue-depth ×
// fault-class matrix and run through the differential oracle.
//
// Usage:
//
//	gmtstress -seed 1 -cells 64              sweep 64 matrix cells
//	gmtstress -seed 1 -cells 64 -j 8         same cells, 8 workers — the
//	                                         report is byte-identical
//	gmtstress -corpus corpus.json            also write the corpus manifest
//	gmtstress -from-corpus corpus.json       re-run a recorded corpus
//	gmtstress -sentinel                      plant a misplan bug: the sweep
//	                                         must fail and emit a reproducer
//	gmtstress -out repros/                   write reproducer .ir files
//
// The report and every emitted reproducer are pure functions of
// (-seed, -cells, -max-size, -sentinel): re-running with any -j produces
// byte-identical output, which CI exploits with a plain cmp. Failing
// cells are shrunk and printed in the oracle corpus format; replay one
// with gmtcheck -replay <file>, or promote it into
// internal/oracle/testdata/corpus to make it a standing regression test.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/randprog"
	"repro/internal/stress"
)

func main() { cli.Main("gmtstress", run) }

func run() error {
	seed := flag.Int64("seed", 1, "corpus base seed (cell i uses program seed+i)")
	cells := flag.Int("cells", 16, "number of matrix cells to run")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS; output is identical for every value)")
	maxSize := flag.Int("max-size", 0, "cap the corpus size axis at this many instructions (0 = full range)")
	corpusOut := flag.String("corpus", "", "write the corpus manifest (corpus.json) to this file")
	fromCorpus := flag.String("from-corpus", "", "regenerate programs from this corpus.json instead of streaming from the seed")
	sentinel := flag.Bool("sentinel", false, "plant a compile-time misplan cell: the sweep must detect, shrink, and reproduce it")
	maxRepros := flag.Int("max-repros", 3, "shrink at most this many failing cells into reproducers")
	shrinkChecks := flag.Int("shrink-checks", 400, "candidate-evaluation budget per shrink")
	outDir := flag.String("out", "", "also write reproducer .ir files into this directory")
	var obsf cli.ObsFlags
	obsf.Register()
	flag.Parse()

	o := obsf.New()
	var metrics *obs.Registry
	if o != nil {
		metrics = o.Metrics
	}
	defer func() {
		if err := obsf.Flush(o); err != nil {
			fmt.Fprintf(os.Stderr, "gmtstress: %v\n", err)
		}
	}()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	opts := stress.Options{
		Seed: *seed, Cells: *cells, Jobs: *jobs, MaxSize: *maxSize,
		Sentinel: *sentinel, MaxRepros: *maxRepros, ShrinkChecks: *shrinkChecks,
		Metrics: metrics,
	}
	if *fromCorpus != "" {
		data, err := os.ReadFile(*fromCorpus)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		m, err := randprog.ParseManifest(data)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		opts.Manifest = m
	}

	if *corpusOut != "" {
		m := opts.Manifest
		if m == nil {
			m = randprog.BuildManifest(*seed, *cells, *maxSize)
		}
		if err := cli.WriteFileAtomic(*corpusOut, func(w io.Writer) error {
			return m.WriteJSON(w)
		}); err != nil {
			return err
		}
	}

	res, err := stress.Sweep(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}
	for _, r := range res.Repros {
		fmt.Printf("reproducer (cell %d, %s):\n%s", r.Cell, r.Status, r.Text)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("cell%d.ir", r.Cell))
			if err := cli.WriteFileAtomic(path, func(w io.Writer) error {
				_, werr := io.WriteString(w, r.Text)
				return werr
			}); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if res.Failed() {
		return cli.Exit(1)
	}
	return nil
}
