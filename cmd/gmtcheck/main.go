// Command gmtcheck runs the differential-execution oracle: it executes
// programs through the single-threaded interpreter, the multi-threaded
// interpreter under a matrix of scheduling policies and queue depths, and
// the cycle-level simulator, and reports any divergence, deadlock, or
// invariant violation.
//
// Usage:
//
//	gmtcheck -n 200 -seed 1           sweep 200 random programs
//	gmtcheck -seed 557 -n 1 -shrink   recheck one seed; minimize failures
//	gmtcheck -schedule adversarial    restrict the scheduling policy
//	gmtcheck -workload ks             check one benchmark workload
//	gmtcheck -workload all            check every benchmark workload
//
// On failure it prints a reproducer in the corpus format (see
// internal/oracle/testdata/corpus) and exits nonzero; with -shrink the
// reproducer is first minimized.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/oracle"
	"repro/internal/workloads"
)

func main() {
	seed := flag.Int64("seed", 1, "first program-generator seed")
	n := flag.Int("n", 100, "number of random programs to check")
	schedule := flag.String("schedule", "", "restrict to one scheduling policy (round-robin, random, adversarial); empty means the full matrix")
	shrink := flag.Bool("shrink", false, "minimize the first failing program before printing it")
	workload := flag.String("workload", "", "check a benchmark workload instead of random programs (a name, or 'all')")
	nosim := flag.Bool("nosim", false, "skip the cycle-level simulator cross-check")
	flag.Parse()

	opts := oracle.Options{Seed: *seed, SkipSim: *nosim}
	if *schedule != "" {
		opts.Schedules = []oracle.SchedSpec{{Name: *schedule, Seed: *seed}}
	}

	if *workload != "" {
		os.Exit(checkWorkloads(*workload, *seed))
	}

	fail := 0
	var runs, programs int
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		c := oracle.Generate(s)
		rep, err := oracle.Check(c, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmtcheck: %v\n", err)
			os.Exit(2)
		}
		runs += rep.Runs
		programs += rep.Programs
		if rep.Ok() {
			continue
		}
		fail++
		fmt.Printf("FAIL %s\n%v\n", c.Name, rep.Err())
		if *shrink {
			kind := rep.Failures[0].Kind
			fmt.Printf("shrinking against %q...\n", kind)
			c = oracle.Shrink(c, oracle.StillFails(opts, kind), 0)
			c.Name = fmt.Sprintf("seed=%d (shrunk)", s)
		}
		fmt.Printf("reproducer:\n%s", oracle.FormatCase(c))
		if *shrink {
			break // one minimized reproducer per invocation
		}
	}
	fmt.Printf("checked %d programs (%d compiled configurations, %d executor runs): %d failing\n",
		*n, programs, runs, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

// checkWorkloads runs the oracle experiment over one or all benchmark
// workloads and prints a row per matrix cell.
func checkWorkloads(name string, seed int64) int {
	ws := workloads.All()
	if name != "all" {
		w, err := workloads.ByName(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmtcheck: %v\n", err)
			return 2
		}
		ws = []*workloads.Workload{w}
	}
	engine := exp.NewEngine(exp.EngineOptions{})
	rows, err := engine.OracleExperiment(context.Background(), ws, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gmtcheck: %v\n", err)
		return 2
	}
	fail := 0
	for _, r := range rows {
		status := "ok"
		if len(r.Failures) > 0 {
			status = "FAIL"
			fail++
		}
		fmt.Printf("%-10s %-8s %4d runs over %d programs  %s\n",
			r.Workload, r.Partitioner, r.Runs, r.Programs, status)
		for _, f := range r.Failures {
			fmt.Printf("    %s\n", f)
		}
	}
	if fail > 0 {
		return 1
	}
	return 0
}
