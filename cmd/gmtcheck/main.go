// Command gmtcheck runs the differential-execution oracle: it executes
// programs through the single-threaded interpreter, the multi-threaded
// interpreter under a matrix of scheduling policies and queue depths, and
// the cycle-level simulator, and reports any divergence, deadlock, or
// invariant violation.
//
// Usage:
//
//	gmtcheck -n 200 -seed 1           sweep 200 random programs
//	gmtcheck -seed 557 -n 1 -shrink   recheck one seed; minimize failures
//	gmtcheck -schedule adversarial    restrict the scheduling policy
//	gmtcheck -workload ks             check one benchmark workload
//	gmtcheck -workload all            check every benchmark workload
//	gmtcheck -chaos drop-produce      verify the oracle detects injected faults
//	gmtcheck -replay repro.ir         re-run a reproducer file (exit 1 if it
//	                                  still fails); gmtstress emits these
//
// On failure it prints a reproducer in the corpus format (see
// internal/oracle/testdata/corpus) and exits nonzero; with -shrink the
// reproducer is first minimized.
//
// With -chaos, a deterministic fault schedule (seeded by -chaos-seed) is
// injected into every multi-threaded run and the pass/fail sense inverts
// into a detector check: a destructive fault the oracle does NOT report is
// the failure. Benign classes (stall-thread, shrink-queue) must instead be
// tolerated. -fail-fast stops at the first unexpected program.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/oracle"
)

func main() { cli.Main("gmtcheck", run) }

func run() error {
	seed := flag.Int64("seed", 1, "first program-generator seed")
	n := flag.Int("n", 100, "number of random programs to check")
	schedule := flag.String("schedule", "", "restrict to one scheduling policy (round-robin, random, adversarial); empty means the full matrix")
	shrink := flag.Bool("shrink", false, "minimize the first failing program before printing it")
	workload := flag.String("workload", "", "check a benchmark workload instead of random programs (a name, or 'all')")
	replay := flag.String("replay", "", "re-run a reproducer file (oracle corpus format); its replay directive pins the matrix cell")
	nosim := flag.Bool("nosim", false, "skip the cycle-level simulator cross-check")
	chaos := flag.String("chaos", "", "inject this fault class into every run and check the oracle detects it")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic fault-schedule seed (same seed = same schedule)")
	failFast := flag.Bool("fail-fast", false, "stop at the first failing (or, with -chaos, undetected) program")
	flag.Parse()

	opts := oracle.Options{Seed: *seed, SkipSim: *nosim}
	if *schedule != "" {
		opts.Schedules = []oracle.SchedSpec{{Name: *schedule, Seed: *seed}}
	}
	var chaosClass fault.Class
	if *chaos != "" {
		cls, err := fault.ParseClass(*chaos)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		chaosClass = cls
		opts.Inject = &fault.Spec{Class: cls, Seed: *chaosSeed}
		// Injected deadlocks should fail fast, not burn the sim budget.
		opts.SimStallLimit = 50_000
	}

	if *replay != "" {
		return replayRepro(*replay, opts, *shrink)
	}
	if *workload != "" {
		return checkWorkloads(*workload, *seed)
	}

	fail := 0
	var runs, programs int
	var injected int64
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		c := oracle.Generate(s)
		rep, err := oracle.Check(c, opts)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		runs += rep.Runs
		programs += rep.Programs
		injected += rep.Injected
		if chaosClass != "" {
			if !chaosOK(chaosClass, rep) {
				fail++
				fmt.Printf("UNEXPECTED %s: class %s injected %d faults, failures %v\n",
					c.Name, chaosClass, rep.Injected, rep.Failures)
				if *failFast {
					break
				}
			}
			continue
		}
		if rep.Ok() {
			continue
		}
		fail++
		fmt.Printf("FAIL %s\n%v\n", c.Name, rep.Err())
		if *shrink {
			kind := rep.Failures[0].Kind
			fmt.Printf("shrinking against %q...\n", kind)
			min, err := oracle.Shrink(c, oracle.StillFails(opts, kind), 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gmtcheck: shrink stopped early: %v\n", err)
			}
			c = min
			c.Name = fmt.Sprintf("seed=%d (shrunk)", s)
		}
		fmt.Printf("reproducer:\n%s", oracle.FormatCase(c))
		if *shrink || *failFast {
			break // one reproducer per invocation
		}
	}
	if chaosClass != "" {
		fmt.Printf("chaos %s seed %d: checked %d programs (%d runs, %d faults injected): %d undetected\n",
			chaosClass, *chaosSeed, *n, runs, injected, fail)
	} else {
		fmt.Printf("checked %d programs (%d compiled configurations, %d executor runs): %d failing\n",
			*n, programs, runs, fail)
	}
	if fail > 0 {
		return cli.Exit(1)
	}
	return nil
}

// replayRepro re-runs one reproducer file. The file's replay directive
// (written by gmtstress and by -shrink) pins the exact matrix cell the
// failure was found in; a file without one runs the full matrix under the
// flag-derived options. Exit status 1 means the failure reproduced.
func replayRepro(path string, opts oracle.Options, shrink bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	c, err := oracle.ParseCase(string(data))
	if err != nil {
		return cli.Usagef("%v", err)
	}
	// A trace directive links the file to the telemetry of the run that
	// found it; echo it so replay output is greppable by trace ID.
	trace := ""
	if c.TraceID != "" {
		trace = fmt.Sprintf(", trace %s", c.TraceID)
	}
	if c.Replay != nil {
		opts.Seed = c.Seed
		if opts, err = c.Replay.Apply(opts); err != nil {
			return cli.Usagef("%v", err)
		}
		fmt.Printf("replaying %s (cell: %s%s)\n", c.Name, c.Replay, trace)
	} else {
		fmt.Printf("replaying %s (full matrix%s)\n", c.Name, trace)
	}
	rep, err := oracle.Check(c, opts)
	if err != nil {
		return err
	}
	if rep.Ok() {
		fmt.Printf("did not reproduce: %d runs clean (%d faults injected)\n", rep.Runs, rep.Injected)
		return nil
	}
	fmt.Printf("reproduced: %v\n", rep.Err())
	if shrink {
		kind := rep.Failures[0].Kind
		fmt.Printf("shrinking against %q...\n", kind)
		min, err := oracle.Shrink(c, oracle.StillFails(opts, kind), 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmtcheck: shrink stopped early: %v\n", err)
		}
		min.Name = c.Name + " (shrunk)"
		fmt.Printf("reproducer:\n%s", oracle.FormatCase(min))
	}
	return cli.Exit(1)
}

// chaosOK applies the per-class detector contract to one chaos-armed
// report: destructive faults must be detected (or never fire), benign
// faults must be tolerated.
func chaosOK(cls fault.Class, rep *oracle.Report) bool {
	if rep.Injected == 0 {
		return rep.Ok() // vacuous schedule: the run must simply pass
	}
	if cls.Benign() {
		return rep.Ok()
	}
	return !rep.Ok()
}

// checkWorkloads runs the oracle experiment over one or all benchmark
// workloads and prints a row per matrix cell.
func checkWorkloads(name string, seed int64) error {
	ws, err := cli.ResolveWorkloads(name)
	if err != nil {
		return err
	}
	engine := exp.NewEngine(exp.EngineOptions{})
	rows, err := engine.OracleExperiment(context.Background(), ws, seed)
	if err != nil {
		return err
	}
	fail := 0
	for _, r := range rows {
		status := "ok"
		if len(r.Failures) > 0 {
			status = "FAIL"
			fail++
		}
		fmt.Printf("%-10s %-8s %4d runs over %d programs  %s\n",
			r.Workload, r.Partitioner, r.Runs, r.Programs, status)
		for _, f := range r.Failures {
			fmt.Printf("    %s\n", f)
		}
	}
	if fail > 0 {
		return cli.Exit(1)
	}
	return nil
}
