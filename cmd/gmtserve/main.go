// Command gmtserve runs scheduling-as-a-service: an HTTP/JSON daemon
// that compiles and schedules IR workloads on request, deduplicates
// identical in-flight requests, and serves repeated requests from a
// persistent content-addressed artifact cache — byte-identical whether
// a response is computed cold, served warm from memory or disk, or
// merged into a concurrent request's flight.
//
// Usage:
//
//	gmtserve [-addr :8437] [-cache-dir DIR] [-mem-entries N] [-disk-entries N]
//	         [-jobs N] [-queue N] [-max-profile-steps N] [-max-measure-steps N]
//	         [-max-sim-cycles N] [-no-degrade] [-metrics out.json]
//	         [-durable] [-deadline D] [-max-deadline D] [-disk-retries N]
//	         [-breaker-faults N] [-breaker-probe N] [-trace-retain N]
//	         [-flight-recorder-size N] [-flight-dir DIR] [-access-log FILE]
//
// API (see internal/serve):
//
//	POST /v1/schedule     {"workload":"ks","partitioner":"gremio","sim":true}
//	POST /v1/batch        {"requests":[...]} -> in-order responses
//	GET  /v1/workloads    GET /v1/partitioners
//	GET  /v1/stats        GET /v1/metrics       GET /v1/healthz[?ready=1]
//	GET  /v1/trace/{id}   span tree of a retained request trace
//	GET  /metrics         Prometheus text-format exposition
//
// -cache-dir "" disables the disk layer (no warmth across restarts).
// Opening the cache runs a crash-recovery scan: orphaned temp files are
// removed and corrupt entries quarantined, so a restart over a dirty
// directory comes up clean. -durable fsyncs entries on write so the
// cache survives machine crashes, not just process crashes. Disk faults
// are retried with bounded deterministic backoff (-disk-retries), and
// after -breaker-faults consecutive failures the disk layer trips to
// memory-only mode (fail-open — requests keep serving), probing every
// -breaker-probe operations until the disk heals.
//
// Every response carries its trace ID in the X-Gmtserve-Trace header
// (and error bodies carry it inline); the span tree of the last
// -trace-retain requests is queryable at GET /v1/trace/{id}. A bounded
// flight recorder keeps the last -flight-recorder-size traces and — if
// -flight-dir is set — snapshots them atomically to disk on every 5xx,
// breaker trip, and drain. -access-log appends one structured JSON
// line per request.
//
// -deadline/-max-deadline bound per-request wall-clock time (504 on
// expiry); deadlines never enter the cache key. -metrics writes the
// full metrics registry on shutdown — atomically, and on error paths
// too, like every other command. SIGINT/SIGTERM mark the server
// draining (readiness false, /v1/healthz?ready=1 → 503) and drain
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() { cli.Main("gmtserve", run) }

func run() (err error) {
	addr := flag.String("addr", ":8437", "listen address")
	cacheDir := flag.String("cache-dir", ".gmtserve-cache", "artifact cache directory (\"\" = memory-only)")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entries (0 = default 1024)")
	diskEntries := flag.Int("disk-entries", 0, "on-disk cache entries before LRU eviction (0 = unbounded)")
	jobs := flag.Int("jobs", 0, "batch fan-out worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "bounded compute-admission queue depth (0 = default 64)")
	maxProfile := flag.Int64("max-profile-steps", 0, "per-request profile-step budget cap (0 = uncapped)")
	maxMeasure := flag.Int64("max-measure-steps", 0, "per-request measure-step budget cap (0 = uncapped)")
	maxSim := flag.Int64("max-sim-cycles", 0, "per-request simulator-cycle budget cap (0 = uncapped)")
	noDegrade := flag.Bool("no-degrade", false, "disable the graceful-degradation chain for requests that don't choose")
	metricsPath := flag.String("metrics", "", "write the metrics registry as JSON on shutdown")
	durable := flag.Bool("durable", false, "fsync cache entries on write (crash-durable Puts)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on per-request deadlines (0 = uncapped)")
	diskRetries := flag.Int("disk-retries", 0, "transient disk-fault retries per cache op (0 = default 2, -1 = off)")
	breakerFaults := flag.Int("breaker-faults", 0, "consecutive disk faults before tripping to memory-only (0 = default 8, -1 = off)")
	breakerProbe := flag.Int("breaker-probe", 0, "probe the tripped disk every Nth operation (0 = default 16)")
	traceRetain := flag.Int("trace-retain", 0, "request traces retained for GET /v1/trace/{id} (0 = default 256)")
	flightSize := flag.Int("flight-recorder-size", 0, "flight-recorder ring size in traces (0 = default 32)")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder dumps on 5xx/breaker/drain (\"\" = disabled)")
	accessLog := flag.String("access-log", "", "append structured JSON access-log lines to this file (\"\" = disabled)")
	flag.Parse()

	var accessW io.Writer
	if *accessLog != "" {
		f, ferr := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("opening access log: %v", ferr)
		}
		defer f.Close()
		accessW = f
	}

	reg := obs.NewRegistry()
	defer func() {
		if *metricsPath == "" {
			return
		}
		if werr := cli.WriteFileAtomic(*metricsPath, reg.WriteJSON); werr != nil && err == nil {
			err = werr
		}
	}()

	s, err := serve.New(serve.Options{
		CacheDir:    *cacheDir,
		MemEntries:  *memEntries,
		DiskEntries: *diskEntries,
		Jobs:        *jobs,
		Queue:       *queue,
		MaxBudget: budget.Budget{
			ProfileSteps: *maxProfile,
			MeasureSteps: *maxMeasure,
			SimCycles:    *maxSim,
		},
		Degrade:          !*noDegrade,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		Durable:          *durable,
		DiskRetries:      *diskRetries,
		BreakerThreshold: *breakerFaults,
		BreakerProbe:     *breakerProbe,
		Metrics:          reg,
		TraceRetain:      *traceRetain,
		FlightSize:       *flightSize,
		FlightDir:        *flightDir,
		AccessLog:        accessW,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gmtserve: listening on %s (cache %s)\n", *addr, cacheDescr(*cacheDir))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gmtserve: shutting down, draining in-flight requests")
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cacheDescr(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
