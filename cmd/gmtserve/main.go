// Command gmtserve runs scheduling-as-a-service: an HTTP/JSON daemon
// that compiles and schedules IR workloads on request, deduplicates
// identical in-flight requests, and serves repeated requests from a
// persistent content-addressed artifact cache — byte-identical whether
// a response is computed cold, served warm from memory or disk, or
// merged into a concurrent request's flight.
//
// Usage:
//
//	gmtserve [-addr :8437] [-cache-dir DIR] [-mem-entries N] [-disk-entries N]
//	         [-jobs N] [-queue N] [-max-profile-steps N] [-max-measure-steps N]
//	         [-max-sim-cycles N] [-no-degrade] [-metrics out.json]
//
// API (see internal/serve):
//
//	POST /v1/schedule     {"workload":"ks","partitioner":"gremio","sim":true}
//	POST /v1/batch        {"requests":[...]} -> in-order responses
//	GET  /v1/workloads    GET /v1/partitioners
//	GET  /v1/stats        GET /v1/metrics       GET /v1/healthz
//
// -cache-dir "" disables the disk layer (no warmth across restarts).
// -metrics writes the full metrics registry on shutdown — atomically,
// and on error paths too, like every other command. SIGINT/SIGTERM
// drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() { cli.Main("gmtserve", run) }

func run() (err error) {
	addr := flag.String("addr", ":8437", "listen address")
	cacheDir := flag.String("cache-dir", ".gmtserve-cache", "artifact cache directory (\"\" = memory-only)")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entries (0 = default 1024)")
	diskEntries := flag.Int("disk-entries", 0, "on-disk cache entries before LRU eviction (0 = unbounded)")
	jobs := flag.Int("jobs", 0, "batch fan-out worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "bounded compute-admission queue depth (0 = default 64)")
	maxProfile := flag.Int64("max-profile-steps", 0, "per-request profile-step budget cap (0 = uncapped)")
	maxMeasure := flag.Int64("max-measure-steps", 0, "per-request measure-step budget cap (0 = uncapped)")
	maxSim := flag.Int64("max-sim-cycles", 0, "per-request simulator-cycle budget cap (0 = uncapped)")
	noDegrade := flag.Bool("no-degrade", false, "disable the graceful-degradation chain for requests that don't choose")
	metricsPath := flag.String("metrics", "", "write the metrics registry as JSON on shutdown")
	flag.Parse()

	reg := obs.NewRegistry()
	defer func() {
		if *metricsPath == "" {
			return
		}
		if werr := cli.WriteFileAtomic(*metricsPath, reg.WriteJSON); werr != nil && err == nil {
			err = werr
		}
	}()

	s, err := serve.New(serve.Options{
		CacheDir:    *cacheDir,
		MemEntries:  *memEntries,
		DiskEntries: *diskEntries,
		Jobs:        *jobs,
		Queue:       *queue,
		MaxBudget: budget.Budget{
			ProfileSteps: *maxProfile,
			MeasureSteps: *maxMeasure,
			SimCycles:    *maxSim,
		},
		Degrade: !*noDegrade,
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gmtserve: listening on %s (cache %s)\n", *addr, cacheDescr(*cacheDir))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gmtserve: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cacheDescr(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
