// Command experiments regenerates the paper's tables and figures: the
// machine table (6a), the benchmark table (6b), the dynamic-instruction
// breakdown under MTCG (1), COCO's communication reduction (7), and the
// speedups over single-threaded execution (8).
//
// The workload × partitioner matrix is fanned out over a worker pool
// (-j/-jobs, default GOMAXPROCS; -j 1 restores the serial path) with
// per-workload profiling and PDG construction memoized and shared between
// figures, so parallel runs emit byte-identical figure rows to serial
// runs. Wall-clock time per figure is reported on stderr.
//
// Usage:
//
// Observability: -trace writes a Chrome trace-event JSON timeline of
// every pipeline phase, interpreter run, and simulation (load it in
// Perfetto or chrome://tracing); -metrics writes the deterministic metrics
// registry. All recorded times are interpreter steps or simulator cycles,
// never wall-clock, so both files are byte-identical across runs and -j
// settings. -timeline additionally records per-cycle simulator lanes
// (bounded by -trace-limit).
//
// Robustness: -chaos matrix runs the detector-coverage matrix (every
// fault class × workload × partitioner cell through the differential
// oracle) and exits nonzero if any cell misses its contract; -chaos with a
// fault class name arms that fault for the figure runs, exercising the
// graceful-degradation chain (fallback rows are annotated in the figures).
// -chaos-seed makes the fault schedule deterministic: same seed, same
// schedule, byte-identical reports. -fail-fast disables the degradation
// chain so the first stage failure aborts instead of falling back.
//
// Profiling: -explain re-simulates every Figure 8 cell under the
// cycle-attribution profiler (internal/profile) and annotates each row
// with the dominant per-bucket contributions to the naive→COCO cycle
// delta; see cmd/gmtprof for the full per-run report.
//
//	experiments [-fig all|1|6a|6b|7|8] [-workloads ks,mpeg2enc,...] [-j N]
//	            [-explain] [-trace out.json] [-metrics out.json] [-timeline]
//	            [-trace-limit N] [-chaos matrix|<fault-class>] [-chaos-seed N]
//	            [-fail-fast]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() { cli.Main("experiments", run) }

func run() (err error) {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 6a, 6b, 7, 8")
	sel := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool size for the experiment matrix (1 = serial)")
	flag.IntVar(jobs, "j", runtime.GOMAXPROCS(0), "shorthand for -jobs")
	var of cli.ObsFlags
	of.Register()
	timeline := flag.Bool("timeline", false, "record per-cycle simulator/interpreter lanes in the trace (large)")
	explain := flag.Bool("explain", false, "annotate Figure 8 rows with the profiler's naive→COCO cycle-delta decomposition")
	chaos := flag.String("chaos", "", "\"matrix\" runs the detector-coverage matrix; a fault class name injects that fault into the figure runs")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic fault-schedule seed (same seed = same schedule)")
	failFast := flag.Bool("fail-fast", false, "disable the graceful-degradation chain: abort on the first stage failure")
	flag.Parse()
	of.Timeline = *timeline

	switch *fig {
	case "all", "1", "6a", "6b", "7", "8":
	default:
		return cli.Usagef("unknown figure %q (want all, 1, 6a, 6b, 7 or 8)", *fig)
	}
	if *jobs < 1 {
		*jobs = runtime.GOMAXPROCS(0)
	}

	ws, err := cli.ResolveWorkloads(*sel)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	ctx := context.Background()
	o := of.New()
	defer func() {
		if ferr := of.Flush(o); ferr != nil && err == nil {
			err = ferr
		}
	}()
	eopts := exp.EngineOptions{Jobs: *jobs, Obs: o, Degrade: !*failFast}
	if *chaos != "" && *chaos != "matrix" {
		cls, err := fault.ParseClass(*chaos)
		if err != nil {
			return cli.Usagef("%v (or \"matrix\")", err)
		}
		if cls == fault.MisplacePlan {
			return cli.Usagef("misplan is a compile-time fault; use -chaos matrix to exercise it")
		}
		eopts.Chaos = &fault.Spec{Class: cls, Seed: *chaosSeed}
	}
	engine := exp.NewEngine(eopts)

	if *chaos == "matrix" {
		cells, err := engine.CoverageMatrix(ctx, ws, *chaosSeed)
		if err != nil {
			return err
		}
		exp.RenderChaos(os.Stdout, *chaosSeed, cells)
		if !exp.ChaosOK(cells) {
			return cli.Exit(1)
		}
		return nil
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "figure %s: %v (j=%d)\n", name, time.Since(start).Round(time.Millisecond), *jobs)
		return nil
	}

	if want("6a") {
		exp.RenderFig6a(os.Stdout, cfg)
		fmt.Println()
	}
	if want("6b") {
		exp.RenderFig6b(os.Stdout, ws)
		fmt.Println()
	}
	var commRows []exp.CommRow
	if want("1") || want("7") {
		err := timed("1+7 (measure)", func() error {
			var err error
			commRows, err = engine.CommExperiment(ctx, ws)
			return err
		})
		if err != nil {
			return err
		}
	}
	if want("1") {
		exp.RenderFig1(os.Stdout, commRows, "GREMIO")
		fmt.Println()
		exp.RenderFig1(os.Stdout, commRows, "DSWP")
		fmt.Println()
	}
	if want("7") {
		exp.RenderFig7(os.Stdout, commRows)
		fmt.Println()
	}
	if want("8") {
		var rows []exp.SpeedupRow
		err := timed("8 (simulate)", func() error {
			var err error
			rows, err = engine.SpeedupExperiment(ctx, cfg, ws)
			return err
		})
		if err != nil {
			return err
		}
		if *explain {
			err := timed("8 (explain)", func() error {
				return engine.AnnotateSpeedups(ctx, cfg, ws, rows)
			})
			if err != nil {
				return err
			}
		}
		exp.RenderFig8(os.Stdout, rows)
	}

	if st := engine.Stats(); st.FaultsInjected > 0 || st.Fallbacks > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d faults injected, %d fallbacks taken\n",
			st.FaultsInjected, st.Fallbacks)
	}
	return nil
}
