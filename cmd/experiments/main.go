// Command experiments regenerates the paper's tables and figures: the
// machine table (6a), the benchmark table (6b), the dynamic-instruction
// breakdown under MTCG (1), COCO's communication reduction (7), and the
// speedups over single-threaded execution (8).
//
// Usage:
//
//	experiments [-fig all|1|6a|6b|7|8] [-workloads ks,mpeg2enc,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 6a, 6b, 7, 8")
	sel := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	flag.Parse()

	ws := workloads.All()
	if *sel != "" {
		ws = nil
		for _, name := range strings.Split(*sel, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ws = append(ws, w)
		}
	}
	cfg := sim.DefaultConfig()

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("6a") {
		exp.RenderFig6a(os.Stdout, cfg)
		fmt.Println()
	}
	if want("6b") {
		exp.RenderFig6b(os.Stdout, ws)
		fmt.Println()
	}
	var commRows []exp.CommRow
	if want("1") || want("7") {
		var err error
		commRows, err = exp.CommExperiment(ws)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if want("1") {
		exp.RenderFig1(os.Stdout, commRows, "GREMIO")
		fmt.Println()
		exp.RenderFig1(os.Stdout, commRows, "DSWP")
		fmt.Println()
	}
	if want("7") {
		exp.RenderFig7(os.Stdout, commRows)
		fmt.Println()
	}
	if want("8") {
		rows, err := exp.SpeedupExperiment(cfg, ws)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exp.RenderFig8(os.Stdout, rows)
	}
}
