// Command gmtsched parallelizes one benchmark workload and reports
// correctness, dynamic instruction statistics, and simulated cycles — the
// per-benchmark view of the pipeline that cmd/experiments aggregates.
//
// Usage:
//
// Observability: -trace writes a Chrome trace-event JSON timeline (load
// in Perfetto or chrome://tracing) including the detailed per-cycle
// simulator lanes and interpreter queue-occupancy tracks; -metrics writes
// the deterministic metrics registry. All recorded times are interpreter
// steps or simulator cycles, never wall-clock.
//
//	gmtsched -workload ks -partitioner gremio [-nococo] [-threads 2] [-sim]
//	         [-trace out.json] [-metrics out.json] [-trace-limit N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "ks", "workload name (see cmd/experiments -fig 6b)")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	noCoco := flag.Bool("nococo", false, "disable COCO (plain MTCG placement)")
	simulate := flag.Bool("sim", true, "run the cycle-level simulator")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	metricsPath := flag.String("metrics", "", "write the metrics registry as JSON to this file")
	traceLimit := flag.Int("trace-limit", 0, "trace event limit (0 = default; drops are counted, never silent)")
	flag.Parse()

	var o *exp.Obs
	if *tracePath != "" || *metricsPath != "" {
		// The single-workload view records the detailed timelines by
		// default; traces stay manageable because only one pipeline runs.
		o = &exp.Obs{Timeline: true}
		if *tracePath != "" {
			o.Trace = obs.NewTrace()
			o.Trace.SetLimit(*traceLimit)
		}
		if *metricsPath != "" {
			o.Metrics = obs.NewRegistry()
		}
	}

	w, err := workloads.ByName(*name)
	die(err)

	var p partition.Partitioner
	switch *part {
	case "gremio":
		p = partition.GREMIO{}
	case "dswp":
		p = partition.DSWP{}
	default:
		die(fmt.Errorf("unknown partitioner %q", *part))
	}

	pipe, err := exp.BuildObserved(w, p, coco.DefaultOptions(), o)
	die(err)
	prog := pipe.Coco
	if *noCoco {
		prog = pipe.Naive
	}
	alloc := queue.Allocate(prog)

	fmt.Printf("workload:    %s (%s, %s, %d%% of execution)\n", w.Name, w.Function, w.Suite, w.ExecPct)
	fmt.Printf("partitioner: %s, COCO=%v\n", p.Name(), !*noCoco)
	fmt.Printf("queues:      %d (from %d per-dependence queues), %d entries deep\n",
		alloc.After, alloc.Before, pipe.QueueCap)

	// Correctness: the multi-threaded reference run must match the
	// single-threaded one.
	ref := w.Ref()
	st, err := interp.Run(w.F, ref.Args, append([]int64(nil), ref.Mem...), budget.Default().ProfileSteps)
	die(err)
	mtCfg := interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues, QueueCap: pipe.QueueCap,
		Assign: pipe.Assign,
		Args:   ref.Args, Mem: append([]int64(nil), ref.Mem...), MaxSteps: budget.Default().MeasureSteps,
	}
	if o != nil {
		if o.Metrics != nil {
			mtCfg.Metrics = o.Metrics.Scope("gmtsched.check.interp")
		}
		if o.Trace != nil {
			// The correctness run gets its own trace process with one
			// queue-occupancy lane.
			const checkPid = 3000
			o.Trace.ProcessName(checkPid, w.Name+"/"+p.Name()+"/check interp")
			o.Trace.ThreadName(checkPid, 0, "queues")
			mtCfg.Trace = o.Trace.Lane(checkPid, 0)
		}
	}
	mt, err := interp.RunMT(mtCfg)
	die(err)
	for i := range st.LiveOuts {
		if st.LiveOuts[i] != mt.LiveOuts[i] {
			die(fmt.Errorf("MISMATCH: live-out %d: single-threaded %d, multi-threaded %d",
				i, st.LiveOuts[i], mt.LiveOuts[i]))
		}
	}
	fmt.Printf("correctness: multi-threaded run matches single-threaded (%d live-outs)\n", len(st.LiveOuts))
	fmt.Printf("dynamic:     computation=%d produce=%d consume=%d sync=%d dup-branches=%d (%.1f%% communication)\n",
		mt.Stats.Compute, mt.Stats.Produce, mt.Stats.Consume,
		mt.Stats.MemSync(), mt.Stats.DupBranch,
		100*float64(mt.Stats.Comm())/float64(mt.Stats.Total()))

	if *simulate {
		cfg := sim.DefaultConfig()
		stc, err := exp.SingleThreadedCyclesObserved(cfg, w, o)
		die(err)
		mtc, err := pipe.MeasureCycles(pipe.Machine(cfg), prog)
		die(err)
		fmt.Printf("cycles:      single-threaded=%d multi-threaded=%d speedup=%.2fx\n",
			stc, mtc, float64(stc)/float64(mtc))
	}

	if o != nil {
		obs.RecordDrops(o.Trace, o.Metrics)
		if *tracePath != "" {
			writeObs(*tracePath, o.Trace.WriteJSON)
			if n := o.Trace.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "trace: %d events over the limit dropped (raise -trace-limit)\n", n)
			}
		}
		if *metricsPath != "" {
			writeObs(*metricsPath, o.Metrics.WriteJSON)
		}
	}
}

// writeObs writes one observability artifact, dying on any error.
func writeObs(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		die(fmt.Errorf("writing %s: %w", path, err))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmtsched:", err)
		os.Exit(1)
	}
}
