// Command gmtsched parallelizes one benchmark workload and reports
// correctness, dynamic instruction statistics, and simulated cycles — the
// per-benchmark view of the pipeline that cmd/experiments aggregates.
//
// Usage:
//
// Observability: -trace writes a Chrome trace-event JSON timeline (load
// in Perfetto or chrome://tracing) including the detailed per-cycle
// simulator lanes and interpreter queue-occupancy tracks; -metrics writes
// the deterministic metrics registry. All recorded times are interpreter
// steps or simulator cycles, never wall-clock.
//
//	gmtsched -workload ks -partitioner gremio [-nococo] [-threads 2] [-sim]
//	         [-trace out.json] [-metrics out.json] [-trace-limit N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/queue"
	"repro/internal/sim"
)

func main() { cli.Main("gmtsched", run) }

func run() (err error) {
	name := flag.String("workload", "ks", "workload name (see cmd/experiments -fig 6b)")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	noCoco := flag.Bool("nococo", false, "disable COCO (plain MTCG placement)")
	simulate := flag.Bool("sim", true, "run the cycle-level simulator")
	// The single-workload view records the detailed timelines by default;
	// traces stay manageable because only one pipeline runs.
	of := cli.ObsFlags{Timeline: true}
	of.Register()
	flag.Parse()

	w, err := cli.ResolveWorkload(*name)
	if err != nil {
		return err
	}
	p, err := cli.ResolvePartitioner(*part)
	if err != nil {
		return err
	}

	o := of.New()
	defer func() {
		if ferr := of.Flush(o); ferr != nil && err == nil {
			err = ferr
		}
	}()

	pipe, err := exp.BuildObserved(w, p, coco.DefaultOptions(), o)
	if err != nil {
		return err
	}
	prog := pipe.Coco
	if *noCoco {
		prog = pipe.Naive
	}
	alloc := queue.Allocate(prog)

	fmt.Printf("workload:    %s (%s, %s, %d%% of execution)\n", w.Name, w.Function, w.Suite, w.ExecPct)
	fmt.Printf("partitioner: %s, COCO=%v\n", p.Name(), !*noCoco)
	fmt.Printf("queues:      %d (from %d per-dependence queues), %d entries deep\n",
		alloc.After, alloc.Before, pipe.QueueCap)

	// Correctness: the multi-threaded reference run must match the
	// single-threaded one.
	ref := w.Ref()
	st, err := interp.Run(w.F, ref.Args, append([]int64(nil), ref.Mem...), budget.Default().ProfileSteps)
	if err != nil {
		return err
	}
	mtCfg := interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues, QueueCap: pipe.QueueCap,
		Assign: pipe.Assign,
		Args:   ref.Args, Mem: append([]int64(nil), ref.Mem...), MaxSteps: budget.Default().MeasureSteps,
	}
	if o != nil {
		if o.Metrics != nil {
			mtCfg.Metrics = o.Metrics.Scope("gmtsched.check.interp")
		}
		if o.Trace != nil {
			// The correctness run gets its own trace process with one
			// queue-occupancy lane.
			const checkPid = 3000
			o.Trace.ProcessName(checkPid, w.Name+"/"+p.Name()+"/check interp")
			o.Trace.ThreadName(checkPid, 0, "queues")
			mtCfg.Trace = o.Trace.Lane(checkPid, 0)
		}
	}
	mt, err := interp.RunMT(mtCfg)
	if err != nil {
		return err
	}
	for i := range st.LiveOuts {
		if st.LiveOuts[i] != mt.LiveOuts[i] {
			return fmt.Errorf("MISMATCH: live-out %d: single-threaded %d, multi-threaded %d",
				i, st.LiveOuts[i], mt.LiveOuts[i])
		}
	}
	fmt.Printf("correctness: multi-threaded run matches single-threaded (%d live-outs)\n", len(st.LiveOuts))
	fmt.Printf("dynamic:     computation=%d produce=%d consume=%d sync=%d dup-branches=%d (%.1f%% communication)\n",
		mt.Stats.Compute, mt.Stats.Produce, mt.Stats.Consume,
		mt.Stats.MemSync(), mt.Stats.DupBranch,
		100*float64(mt.Stats.Comm())/float64(mt.Stats.Total()))

	if *simulate {
		cfg := sim.DefaultConfig()
		stc, err := exp.SingleThreadedCyclesObserved(cfg, w, o)
		if err != nil {
			return err
		}
		mtc, err := pipe.MeasureCycles(pipe.Machine(cfg), prog)
		if err != nil {
			return err
		}
		fmt.Printf("cycles:      single-threaded=%d multi-threaded=%d speedup=%.2fx\n",
			stc, mtc, float64(stc)/float64(mtc))
	}
	return nil
}
