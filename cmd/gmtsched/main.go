// Command gmtsched parallelizes one benchmark workload and reports
// correctness, dynamic instruction statistics, and simulated cycles — the
// per-benchmark view of the pipeline that cmd/experiments aggregates.
//
// Usage:
//
//	gmtsched -workload ks -partitioner gremio [-nococo] [-threads 2] [-sim]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/partition"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "ks", "workload name (see cmd/experiments -fig 6b)")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	noCoco := flag.Bool("nococo", false, "disable COCO (plain MTCG placement)")
	simulate := flag.Bool("sim", true, "run the cycle-level simulator")
	flag.Parse()

	w, err := workloads.ByName(*name)
	die(err)

	var p partition.Partitioner
	switch *part {
	case "gremio":
		p = partition.GREMIO{}
	case "dswp":
		p = partition.DSWP{}
	default:
		die(fmt.Errorf("unknown partitioner %q", *part))
	}

	pipe, err := exp.Build(w, p, coco.DefaultOptions())
	die(err)
	prog := pipe.Coco
	if *noCoco {
		prog = pipe.Naive
	}
	alloc := queue.Allocate(prog)

	fmt.Printf("workload:    %s (%s, %s, %d%% of execution)\n", w.Name, w.Function, w.Suite, w.ExecPct)
	fmt.Printf("partitioner: %s, COCO=%v\n", p.Name(), !*noCoco)
	fmt.Printf("queues:      %d (from %d per-dependence queues), %d entries deep\n",
		alloc.After, alloc.Before, pipe.QueueCap)

	// Correctness: the multi-threaded reference run must match the
	// single-threaded one.
	ref := w.Ref()
	st, err := interp.Run(w.F, ref.Args, append([]int64(nil), ref.Mem...), budget.Default().ProfileSteps)
	die(err)
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues, QueueCap: pipe.QueueCap,
		Assign: pipe.Assign,
		Args:   ref.Args, Mem: append([]int64(nil), ref.Mem...), MaxSteps: budget.Default().MeasureSteps,
	})
	die(err)
	for i := range st.LiveOuts {
		if st.LiveOuts[i] != mt.LiveOuts[i] {
			die(fmt.Errorf("MISMATCH: live-out %d: single-threaded %d, multi-threaded %d",
				i, st.LiveOuts[i], mt.LiveOuts[i]))
		}
	}
	fmt.Printf("correctness: multi-threaded run matches single-threaded (%d live-outs)\n", len(st.LiveOuts))
	fmt.Printf("dynamic:     computation=%d produce=%d consume=%d sync=%d dup-branches=%d (%.1f%% communication)\n",
		mt.Stats.Compute, mt.Stats.Produce, mt.Stats.Consume,
		mt.Stats.MemSync(), mt.Stats.DupBranch,
		100*float64(mt.Stats.Comm())/float64(mt.Stats.Total()))

	if *simulate {
		cfg := sim.DefaultConfig()
		stc, err := exp.SingleThreadedCycles(cfg, w)
		die(err)
		mtc, err := pipe.MeasureCycles(pipe.Machine(cfg), prog)
		die(err)
		fmt.Printf("cycles:      single-threaded=%d multi-threaded=%d speedup=%.2fx\n",
			stc, mtc, float64(stc)/float64(mtc))
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmtsched:", err)
		os.Exit(1)
	}
}
