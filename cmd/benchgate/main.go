// Command benchgate diffs a fresh benchmark artifact against a committed
// baseline (both written by the BenchmarkSuite benchmarks via
// internal/benchsuite). Deterministic work metrics must match exactly and
// allocation counters must stay within the regression band — any such
// drift is fatal. Wall-clock ns/op is compared with a tolerance ratio and
// only reported, never fatal by default, because CI machines are noisy;
// -strict-ns promotes slowdowns past the tolerance to failures for use on
// quiet, dedicated hardware.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSuite -benchtime 1x .
//	go run ./cmd/benchgate -baseline /path/to/committed.json -fresh BENCH_pipeline.json
package main

import (
	"flag"
	"fmt"

	"repro/internal/benchsuite"
	"repro/internal/cli"
)

func main() { cli.Main("benchgate", run) }

func run() error {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "committed baseline artifact")
	fresh := flag.String("fresh", "", "fresh artifact to gate (required)")
	nsTol := flag.Float64("ns-tolerance", 2.0, "max fresh/baseline ns_per_op ratio before a slowdown is reported")
	strictNS := flag.Bool("strict-ns", false, "treat slowdowns past -ns-tolerance as failures")
	flag.Parse()
	if *fresh == "" {
		flag.Usage()
		return cli.Usagef("-fresh is required")
	}

	base, err := benchsuite.ReadFile(*baseline)
	if err != nil {
		return err
	}
	fr, err := benchsuite.ReadFile(*fresh)
	if err != nil {
		return err
	}

	failed := false
	for _, d := range benchsuite.Diff(base, fr) {
		fmt.Printf("FAIL %s\n", d)
		failed = true
	}

	fm := map[string]benchsuite.Result{}
	for _, r := range fr {
		fm[r.Name] = r
	}
	for _, b := range base {
		f, ok := fm[b.Name]
		if !ok || b.NsPerOp <= 0 || f.NsPerOp <= 0 {
			continue
		}
		ratio := f.NsPerOp / b.NsPerOp
		status := "ok  "
		if ratio > *nsTol {
			status = "slow"
			if *strictNS {
				status = "FAIL"
				failed = true
			}
		}
		fmt.Printf("%s %-40s %12.0f -> %12.0f ns/op (%.2fx)\n",
			status, b.Name, b.NsPerOp, f.NsPerOp, ratio)
	}

	if failed {
		fmt.Println("benchgate: FAIL")
		return cli.Exit(1)
	}
	fmt.Println("benchgate: ok")
	return nil
}
