// Command irdump prints a workload's IR, its thread assignment under a
// chosen partitioner, the communication plan, and the generated
// multi-threaded code — the framework's primary inspection tool.
//
// Usage:
//
//	irdump -workload ks [-partitioner gremio|dswp] [-coco] [-threads 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
)

func main() { cli.Main("irdump", run) }

func run() error {
	name := flag.String("workload", "ks", "workload name")
	part := flag.String("partitioner", "gremio", "gremio or dswp")
	useCoco := flag.Bool("coco", false, "apply COCO optimization")
	threads := flag.Int("threads", 2, "number of threads")
	dot := flag.String("dot", "", "emit Graphviz instead of text: cfg or pdg")
	flag.Parse()

	w, err := cli.ResolveWorkload(*name)
	if err != nil {
		return err
	}
	p, err := cli.ResolvePartitioner(*part)
	if err != nil {
		return err
	}
	in := w.Train()
	st, err := interp.Run(w.F, in.Args, in.Mem, budget.Experiments().ProfileSteps)
	if err != nil {
		return err
	}
	g := pdg.Build(w.F, w.Objects)

	assign, err := p.Partition(w.F, g, st.Profile, *threads)
	if err != nil {
		return err
	}

	switch *dot {
	case "cfg":
		return pdg.WriteCFGDOT(os.Stdout, w.F)
	case "pdg":
		return g.WriteDOT(os.Stdout, assign)
	case "":
	default:
		return cli.Usagef("unknown -dot mode %q (want cfg or pdg)", *dot)
	}

	fmt.Printf("=== %s: original IR (with %s thread assignment) ===\n", w.Name, p.Name())
	for _, b := range w.F.Blocks {
		fmt.Printf("%s:\n", b.Name)
		for _, i := range b.Instrs {
			t := "-"
			if i.Op != ir.Jump && i.Op != ir.Nop {
				t = fmt.Sprintf("%d", assign[i])
			}
			fmt.Printf("  [T%s] %v\n", t, i)
		}
	}

	var plan *mtcg.Plan
	if *useCoco {
		plan, err = coco.Plan(w.F, g, assign, *threads, st.Profile, coco.DefaultOptions())
		if err != nil {
			return err
		}
	} else {
		plan = mtcg.NaivePlan(w.F, g, assign, *threads)
	}
	fmt.Println("\n=== communication plan ===")
	for _, c := range plan.Comms {
		fmt.Printf("  %v\n", c)
	}
	prog, err := mtcg.Generate(plan)
	if err != nil {
		return err
	}
	for _, ft := range prog.Threads {
		fmt.Printf("\n=== %s ===\n%s", ft.Name, ft)
	}
	return nil
}
