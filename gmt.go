// Package gmt is the public face of the global multi-threaded (GMT)
// instruction scheduling framework: a reproduction of "Global
// Multi-Threaded Instruction Scheduling" (GREMIO, MICRO 2007) and its
// companion "Communication Optimizations for Global Multi-Threaded
// Instruction Scheduling" (COCO, ASPLOS 2008) by Ottoni and August.
//
// The framework follows Figure 2 of the paper: build a Program Dependence
// Graph for a region of low-level IR, partition its instructions into
// threads with a pluggable partitioner (DSWP or GREMIO), and generate
// multi-threaded code with MTCG, placing inter-thread communication either
// naively (at each dependence's source) or optimally via COCO's thread-aware
// data-flow analyses and graph min-cuts.
//
// Typical use:
//
//	b := gmt.NewBuilder("kernel")
//	... build the region's CFG ...
//	res, err := gmt.Parallelize(b.F, b.Objects, gmt.Config{
//		Scheduler: gmt.SchedulerDSWP,
//		COCO:      true,
//		Profile:   gmt.ProfileInput{Args: args, Mem: mem},
//	})
//	out, err := gmt.Execute(res, args, mem)
package gmt

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/sim"
)

// Budget bounds the interpreter and simulator runs the framework performs:
// profiling, execution, and cycle-level simulation. It is shared with the
// experiment harness so the public API and the figure engine draw their
// limits from one place. The zero value means DefaultBudget().
type Budget = budget.Budget

// DefaultBudget returns the budgets used when Config.Budget is zero.
func DefaultBudget() Budget { return budget.Default() }

// Re-exported IR types: the vocabulary clients build regions with.
type (
	// Function is a single-entry region of IR: the unit the framework
	// parallelizes.
	Function = ir.Function
	// Builder constructs Functions imperatively.
	Builder = ir.Builder
	// MemObject names an array in the flat word-addressed memory.
	MemObject = ir.MemObject
	// Reg is a virtual register.
	Reg = ir.Reg
	// Instr is one IR instruction.
	Instr = ir.Instr
	// Profile holds CFG edge execution counts.
	Profile = ir.Profile
	// Memory is the flat program memory.
	Memory = interp.Memory
	// MachineConfig describes the simulated CMP (Figure 6(a)).
	MachineConfig = sim.Config
	// CommStats classifies dynamic instructions (computation versus
	// communication), the quantity behind Figures 1 and 7.
	CommStats = interp.CommStats
	// Partitioner is the pluggable thread-assignment stage of Figure 2.
	Partitioner = partition.Partitioner
)

// NewBuilder returns a builder for a fresh region.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// DefaultMachine returns the dual-core Itanium 2 model of Figure 6(a).
func DefaultMachine() MachineConfig { return sim.DefaultConfig() }

// Scheduler selects a built-in partitioner.
type Scheduler string

const (
	// SchedulerDSWP selects Decoupled Software Pipelining [16].
	SchedulerDSWP Scheduler = "dswp"
	// SchedulerGREMIO selects the GREMIO hierarchical scheduler [15].
	SchedulerGREMIO Scheduler = "gremio"
)

// ProfileInput describes the training input used to collect the edge
// profile that drives partitioning and COCO's min-cut costs.
type ProfileInput struct {
	Args []int64
	Mem  []int64
}

// Config controls Parallelize.
type Config struct {
	// Scheduler picks a built-in partitioner; Custom overrides it.
	Scheduler Scheduler
	// Custom, when non-nil, is used instead of Scheduler — the "plug your
	// own partitioner" extension point of Figure 2.
	Custom Partitioner
	// Threads is the number of threads to extract (default 2, the
	// paper's evaluation).
	Threads int
	// COCO enables the communication optimization framework; without it
	// MTCG places communication at each dependence's source instruction.
	COCO bool
	// CocoOptions tunes COCO when enabled; zero value means the paper's
	// defaults.
	CocoOptions coco.Options
	// Profile is the training input; it is executed once to collect edge
	// counts. Ignored when StaticProfile is set.
	Profile ProfileInput
	// StaticProfile estimates edge frequencies structurally (Wu–Larus
	// style [28]) instead of running the training input — the paper's
	// profile-free alternative.
	StaticProfile bool
	// KeepPerDepQueues disables queue allocation, keeping MTCG's one
	// queue per dependence.
	KeepPerDepQueues bool
	// Budget bounds the profiling, execution, and simulation runs; zero
	// fields default to DefaultBudget().
	Budget Budget
}

// Result is a parallelized region.
type Result struct {
	// Threads holds one function per generated thread.
	Threads []*Function
	// NumQueues is the number of synchronization-array queues used.
	NumQueues int
	// Assign is the partition that produced the code.
	Assign map[*Instr]int
	// Profile is the collected training profile.
	Profile *Profile
	// QueueCap is the synchronization-array queue depth the region is
	// executed with: the partitioner's preference (32 entries for DSWP,
	// single-entry queues otherwise, as in the paper's evaluation).
	// Execute uses it directly; pass it into MachineConfig.QueueCap to
	// simulate the same depth.
	QueueCap int

	orig    *ir.Function
	objects []ir.MemObject
	program *mtcg.Program
	budget  Budget
}

// Original returns the region the result was produced from.
func (r *Result) Original() *Function { return r.orig }

// Objects returns the region's memory-object table.
func (r *Result) Objects() []MemObject { return r.objects }

// CommCount returns the number of distinct communicated dependences (each
// occupying one logical queue before allocation).
func (r *Result) CommCount() int { return len(r.program.Comms) }

// Parallelize runs the full pipeline of Figure 2 on a region: profiling,
// PDG construction, partitioning, communication planning (naive or COCO),
// MTCG, and queue allocation.
func Parallelize(f *Function, objects []MemObject, cfg Config) (*Result, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	cfg.Budget = cfg.Budget.OrElse(budget.Default())
	var edgeProf *ir.Profile
	if cfg.StaticProfile {
		edgeProf = analysis.EstimateProfile(f)
	} else {
		res, err := interp.Run(f, cfg.Profile.Args, cfg.Profile.Mem, cfg.Budget.ProfileSteps)
		if err != nil {
			return nil, fmt.Errorf("gmt: profiling: %w", err)
		}
		edgeProf = res.Profile
	}

	g := pdg.Build(f, objects)
	part := cfg.Custom
	if part == nil {
		switch cfg.Scheduler {
		case SchedulerDSWP, "":
			part = partition.DSWP{}
		case SchedulerGREMIO:
			part = partition.GREMIO{}
		default:
			return nil, fmt.Errorf("gmt: unknown scheduler %q", cfg.Scheduler)
		}
	}
	assign, err := part.Partition(f, g, edgeProf, cfg.Threads)
	if err != nil {
		return nil, fmt.Errorf("gmt: partitioning: %w", err)
	}

	var plan *mtcg.Plan
	if cfg.COCO {
		opts := cfg.CocoOptions
		if opts == (coco.Options{}) {
			opts = coco.DefaultOptions()
		}
		plan, err = coco.Plan(f, g, assign, cfg.Threads, edgeProf, opts)
		if err != nil {
			return nil, fmt.Errorf("gmt: COCO: %w", err)
		}
	} else {
		plan = mtcg.NaivePlan(f, g, assign, cfg.Threads)
	}
	prog, err := mtcg.Generate(plan)
	if err != nil {
		return nil, fmt.Errorf("gmt: MTCG: %w", err)
	}
	if !cfg.KeepPerDepQueues {
		queue.Allocate(prog)
	}
	return &Result{
		Threads:   prog.Threads,
		NumQueues: prog.NumQueues,
		Assign:    assign,
		Profile:   edgeProf,
		QueueCap:  partition.QueueCapFor(part),
		orig:      f,
		objects:   objects,
		program:   prog,
		budget:    cfg.Budget,
	}, nil
}

// Job is one region for ParallelizeAll.
type Job struct {
	F       *Function
	Objects []MemObject
	Config  Config
}

// ParallelizeAll runs Parallelize over many independent regions
// concurrently, using up to jobs workers (jobs <= 0 means GOMAXPROCS).
// Results are returned in input order; the first error aborts dispatch of
// the remaining regions and is returned after in-flight work finishes.
// Regions must not share mutable state — each Job's Function is compiled,
// and its profile input executed, on its own worker.
func ParallelizeAll(ctx context.Context, jobs int, work []Job) ([]*Result, error) {
	results := make([]*Result, len(work))
	err := par.Run(ctx, jobs, len(work), func(i int) error {
		r, err := Parallelize(work[i].F, work[i].Objects, work[i].Config)
		if err != nil {
			return fmt.Errorf("gmt: region %d (%s): %w", i, work[i].F.Name, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ExecResult is the outcome of executing a parallelized region.
type ExecResult struct {
	// LiveOuts are the region's final live-out values.
	LiveOuts []int64
	// Mem is the final memory image.
	Mem []int64
	// Stats classifies the dynamic instructions executed.
	Stats CommStats
}

// Execute runs the parallelized region on the deterministic multi-threaded
// interpreter and returns live-outs, memory, and instruction statistics.
func Execute(r *Result, args []int64, mem Memory) (*ExecResult, error) {
	mt, err := interp.RunMT(interp.MTConfig{
		Threads:   r.Threads,
		NumQueues: r.NumQueues,
		QueueCap:  r.QueueCap,
		Assign:    r.Assign,
		Args:      args,
		Mem:       mem,
		MaxSteps:  r.budget.OrElse(budget.Default()).MeasureSteps,
	})
	if err != nil {
		return nil, err
	}
	return &ExecResult{LiveOuts: mt.LiveOuts, Mem: mt.Mem, Stats: mt.Stats}, nil
}

// ExecuteSingle runs the original single-threaded region, returning its
// live-outs and dynamic instruction count — the golden reference.
func ExecuteSingle(f *Function, args []int64, mem Memory) (liveOuts []int64, steps int64, err error) {
	res, err := interp.Run(f, args, mem, budget.Default().ProfileSteps)
	if err != nil {
		return nil, 0, err
	}
	return res.LiveOuts, res.Steps, nil
}

// Simulate times the parallelized region on the cycle-level CMP model and
// returns the cycle count.
func Simulate(r *Result, cfg MachineConfig, args []int64, mem []int64) (int64, error) {
	res, err := sim.Run(cfg, r.Threads, args, mem, r.budget.OrElse(budget.Default()).SimCycles)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// SimulateSingle times the original region on one core of the machine.
func SimulateSingle(f *Function, cfg MachineConfig, args []int64, mem []int64) (int64, error) {
	res, err := sim.RunSingle(cfg, f, args, mem, budget.Default().SimCycles)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
